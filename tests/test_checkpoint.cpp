// Checkpoint/restart matrix: crash-consistent snapshots of OocMatrix +
// execution frontier, kill-and-resume verification, corruption
// rejection, and the quiesce/trigger protocol.
//
// Every suite name starts with "Ckpt" so CI can run the whole matrix
// with `ctest -R 'Ckpt'`. The kill knob (FaultConfig::kill_after_writes)
// is deterministic, so these tests hold for any GEP_FAULT_SEED.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "extmem/checkpoint.hpp"
#include "extmem/fault_injector.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "extmem/robust_store.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

constexpr std::uint64_t kJob = 0xC0FFEE01;

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/gep_ckpt_test_XXXXXX";
    const char* p = ::mkdtemp(buf);
    path = (p != nullptr) ? p : "/tmp";
  }
  ~TempDir() {
    DIR* d = ::opendir(path.c_str());
    if (d != nullptr) {
      for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
        const std::string n = e->d_name;
        if (n != "." && n != "..") ::unlink((path + "/" + n).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
};

Matrix<double> fw_init(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 9.0);
    m(i, i) = 0;
  }
  return m;
}

Matrix<double> lu_init(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

bool bit_identical(const Matrix<double>& a, const Matrix<double>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols()) *
                         sizeof(double)) == 0;
}

enum class Algo { FW, LU, MM };

const char* algo_str(Algo a) {
  return a == Algo::FW ? "fw" : a == Algo::LU ? "lu" : "mm";
}

// One out-of-core job: cache + matrices in the fixed registration order
// the snapshot format captures (MM: C, A, B).
struct Job {
  Algo algo;
  index_t n, bs;
  PageCache cache;
  std::vector<std::unique_ptr<OocTiledMatrix<double>>> mats;

  Job(Algo a, index_t n_, index_t bs_, std::uint64_t frames,
      RobustOptions robust = {})
      : algo(a),
        n(n_),
        bs(bs_),
        cache(frames * bs_ * bs_ * sizeof(double),
              bs_ * bs_ * sizeof(double), {}, robust) {
    const int nm = (algo == Algo::MM) ? 3 : 1;
    for (int i = 0; i < nm; ++i) {
      mats.push_back(std::make_unique<OocTiledMatrix<double>>(cache, n, n,
                                                              bs));
    }
  }

  DagProblem problem() const {
    return algo == Algo::FW   ? DagProblem::FloydWarshall
           : algo == Algo::LU ? DagProblem::LU
                              : DagProblem::MatMul;
  }

  void load_input() {
    if (algo == Algo::FW) {
      mats[0]->load(fw_init(n, 7));
    } else if (algo == Algo::LU) {
      mats[0]->load(lu_init(n, 8));
    } else {
      mats[0]->load(Matrix<double>(n, n, 0.0));
      mats[1]->load(lu_init(n, 9));
      mats[2]->load(lu_init(n, 10));
    }
  }

  void register_with(CheckpointCoordinator& ck) const {
    for (const auto& m : mats) {
      ck.add_matrix(m->file_id(), static_cast<std::uint64_t>(m->rows()),
                    static_cast<std::uint64_t>(m->cols()),
                    static_cast<std::uint64_t>(m->tile_side()),
                    sizeof(double), m->file_pages());
    }
  }

  void run(CheckpointCoordinator* ck, bool dag, bool async) {
    if (async) cache.enable_async_io();
    struct AsyncOff {
      PageCache* c;
      bool on;
      ~AsyncOff() {
        if (on) c->disable_async_io();
      }
    } guard{&cache, async};
    if (dag) {
      WorkStealingPool pool(2);
      OocDagOptions o;
      o.prefetch = async;
      o.ckpt = ck;
      switch (algo) {
        case Algo::FW: ooc_igep_floyd_warshall_dag(*mats[0], &pool, o); break;
        case Algo::LU: ooc_igep_lu_dag(*mats[0], &pool, o); break;
        case Algo::MM:
          ooc_igep_matmul_dag(*mats[0], *mats[1], *mats[2], &pool, o);
          break;
      }
    } else {
      SeqInvoker inv;
      OocTypedOptions o;
      o.prefetch = async;
      o.ckpt = ck;
      switch (algo) {
        case Algo::FW: ooc_igep_floyd_warshall(*mats[0], inv, o); break;
        case Algo::LU: ooc_igep_lu(*mats[0], inv, o); break;
        case Algo::MM:
          ooc_igep_matmul(*mats[0], *mats[1], *mats[2], inv, o);
          break;
      }
    }
  }

  Matrix<double> result() const { return mats[0]->to_matrix(); }

  bool any_killed() const {
    for (const auto& m : mats) {
      FaultInjector* inj = cache.fault_injector(m->file_id());
      if (inj != nullptr && inj->killed()) return true;
    }
    return false;
  }
};

RobustOptions install_only() {
  RobustOptions r;
  r.faults.install = true;
  r.retry.backoff_us = 0;
  return r;
}

RobustOptions kill_after(std::uint64_t writes) {
  RobustOptions r;
  r.faults.kill_after_writes = writes;
  r.retry.backoff_us = 0;
  return r;
}

CheckpointOptions ckpt_opts(const std::string& dir,
                            std::uint64_t every_n = 4) {
  CheckpointOptions o;
  o.dir = dir;
  o.job_id = kJob;
  o.every_n_leaves = every_n;
  return o;
}

// ---- Kill-and-resume matrix ----
//
// Per cell: (1) uncheckpointed reference; (2) checkpointed calibration
// run that also proves checkpointing itself preserves bit-identity and
// measures the job's write count W; (3) crash run killed after
// frac * W writes; (4) resume into FRESH matrices (seq-0 snapshots are
// self-contained, so nothing is reloaded) and bit-compare against the
// reference. A kill before the first snapshot leaves no chain; the
// resume leg then rebuilds from the input, which is the documented
// fallback path.
void kill_resume_case(Algo algo, bool dag, bool async, double frac,
                      std::uint64_t frames) {
  SCOPED_TRACE(std::string(algo_str(algo)) + (dag ? " dag" : " forkjoin") +
               (async ? " async" : " sync") + " frac " +
               std::to_string(frac));
  const index_t n = 32, bs = 8;

  Matrix<double> ref;
  {
    Job job(algo, n, bs, frames);
    job.load_input();
    job.run(nullptr, dag, async);
    ref = job.result();
  }

  std::uint64_t w0 = 0;
  {
    TempDir cal;
    Job job(algo, n, bs, frames, install_only());
    CheckpointCoordinator ck(job.cache, ckpt_opts(cal.path));
    job.register_with(ck);
    job.load_input();
    job.run(&ck, dag, async);
    EXPECT_GE(ck.stats().count, 2u) << "periodic trigger never fired";
    EXPECT_TRUE(bit_identical(ref, job.result()))
        << "checkpointing must not perturb the computation";
    FaultInjector* inj = job.cache.fault_injector(job.mats[0]->file_id());
    ASSERT_NE(inj, nullptr);
    w0 = inj->stats().writes_seen;
  }
  ASSERT_GT(w0, 4u);
  const std::uint64_t kill_at =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     static_cast<double>(w0) * frac));

  TempDir dir;
  bool died = false;
  {
    Job job(algo, n, bs, frames, kill_after(kill_at));
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    try {
      job.load_input();
      job.run(&ck, dag, async);
    } catch (const std::exception&) {
      died = true;
    }
    EXPECT_TRUE(job.any_killed()) << "kill knob never fired (W=" << w0
                                  << ", kill_at=" << kill_at << ")";
  }
  EXPECT_TRUE(died) << "a dead store must fail the job";

  {
    Job job(algo, n, bs, frames);
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    ck.bind(job.problem(), n, bs, false);
    const bool resumed = ck.resume();
    if (!resumed) job.load_input();  // killed before the first snapshot
    const std::uint64_t pre = ck.done_leaves();
    if (resumed) {
      EXPECT_GT(pre + 1, 0u);  // frontier may legally be empty at seq 0
    }
    job.run(&ck, dag, async);
    EXPECT_EQ(ck.done_leaves(), ck.task_count());
    EXPECT_TRUE(bit_identical(ref, job.result()))
        << "resumed result must be bit-identical (resumed=" << resumed
        << ", pre=" << pre << ")";
  }
}

TEST(CkptKillResume, FwForkJoinSyncEarly) {
  kill_resume_case(Algo::FW, false, false, 0.25, 8);
}
TEST(CkptKillResume, FwForkJoinSyncMid) {
  kill_resume_case(Algo::FW, false, false, 0.5, 8);
}
TEST(CkptKillResume, FwForkJoinSyncLate) {
  kill_resume_case(Algo::FW, false, false, 0.75, 8);
}
TEST(CkptKillResume, LuForkJoinSyncEarly) {
  kill_resume_case(Algo::LU, false, false, 0.25, 8);
}
TEST(CkptKillResume, LuForkJoinSyncMid) {
  kill_resume_case(Algo::LU, false, false, 0.5, 8);
}
TEST(CkptKillResume, LuForkJoinSyncLate) {
  kill_resume_case(Algo::LU, false, false, 0.75, 8);
}
TEST(CkptKillResume, MmForkJoinSyncEarly) {
  kill_resume_case(Algo::MM, false, false, 0.25, 16);
}
TEST(CkptKillResume, MmForkJoinSyncMid) {
  kill_resume_case(Algo::MM, false, false, 0.5, 16);
}
TEST(CkptKillResume, MmForkJoinSyncLate) {
  kill_resume_case(Algo::MM, false, false, 0.75, 16);
}
TEST(CkptKillResume, FwForkJoinAsyncMid) {
  kill_resume_case(Algo::FW, false, true, 0.5, 12);
}
TEST(CkptKillResume, FwDagAsyncMid) {
  kill_resume_case(Algo::FW, true, true, 0.4, 28);
}
TEST(CkptKillResume, LuDagSyncEarly) {
  kill_resume_case(Algo::LU, true, false, 0.25, 28);
}
TEST(CkptKillResume, LuDagAsyncMid) {
  kill_resume_case(Algo::LU, true, true, 0.4, 28);
}
TEST(CkptKillResume, MmDagAsyncMid) {
  kill_resume_case(Algo::MM, true, true, 0.4, 32);
}

// Cross-runtime resume: a chain cut under the fork-join invoker resumes
// under the DAG scheduler (the fingerprint deliberately excludes the
// runtime — any topological execution of the same DAG is bit-identical).
TEST(CkptKillResume, ForkJoinCutResumesUnderDagRuntime) {
  const index_t n = 32, bs = 8;
  Matrix<double> ref;
  {
    Job job(Algo::FW, n, bs, 28);
    job.load_input();
    job.run(nullptr, false, false);
    ref = job.result();
  }
  TempDir dir;
  bool died = false;
  {
    Job job(Algo::FW, n, bs, 28, kill_after(40));
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    try {
      job.load_input();
      job.run(&ck, /*dag=*/false, /*async=*/false);
    } catch (const std::exception&) {
      died = true;
    }
  }
  EXPECT_TRUE(died);
  {
    Job job(Algo::FW, n, bs, 28);
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    ck.bind(DagProblem::FloydWarshall, n, bs, false);
    if (!ck.resume()) job.load_input();
    job.run(&ck, /*dag=*/true, /*async=*/false);
    EXPECT_TRUE(bit_identical(ref, job.result()));
  }
}

// ---- Snapshot format validation ----

// Builds a complete checkpointed FW run in `dir` and returns the chain's
// file paths (>= 2 snapshots: periodic cuts plus a final full-frontier
// cut from checkpoint_now()).
std::vector<std::string> make_chain(const std::string& dir) {
  Job job(Algo::FW, 32, 8, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir));
  job.register_with(ck);
  job.load_input();
  job.run(&ck, false, false);
  ck.checkpoint_now();
  std::vector<std::string> paths;
  for (const SnapshotInfo& s : load_chain(dir, kJob)) paths.push_back(s.path);
  return paths;
}

TEST(CkptFormat, ChainValidatesAndChainsParentChecksums) {
  TempDir dir;
  const auto paths = make_chain(dir.path);
  ASSERT_GE(paths.size(), 2u);
  const auto chain = load_chain(dir.path, kJob);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].header.seq, i);
    EXPECT_EQ(chain[i].header.parent_crc,
              i == 0 ? 0u : chain[i - 1].file_crc);
    EXPECT_EQ(chain[i].path,
              dir.path + "/" + snapshot_filename(kJob, i));
  }
  // The newest frontier names every leaf (checkpoint_now after the run).
  EXPECT_EQ(chain.back().header.done_count, chain.back().header.task_count);
  // Incrementals carry strictly less than the full base image.
  std::uint64_t base_pages = 0, incr_pages = 0;
  for (const auto& e : chain.front().extents) base_pages += e.count;
  for (const auto& e : chain.back().extents) incr_pages += e.count;
  EXPECT_GT(base_pages, 0u);
  EXPECT_LT(incr_pages, base_pages);
}

TEST(CkptFormat, TruncatedSnapshotRejected) {
  TempDir dir;
  const auto paths = make_chain(dir.path);
  ASSERT_GE(paths.size(), 2u);
  ASSERT_EQ(::truncate(paths.back().c_str(), 64), 0);
  EXPECT_THROW(read_snapshot(paths.back(), nullptr), CheckpointError);
  EXPECT_THROW(load_chain(dir.path, kJob), CheckpointError);
}

TEST(CkptFormat, BitFlippedPayloadRejected) {
  TempDir dir;
  const auto paths = make_chain(dir.path);
  FILE* f = std::fopen(paths.front().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_GT(size, 512);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  EXPECT_THROW(read_snapshot(paths.front(), nullptr), CheckpointError);
  EXPECT_THROW(load_chain(dir.path, kJob), CheckpointError);
}

TEST(CkptFormat, MissingBaseSnapshotBreaksChain) {
  TempDir dir;
  const auto paths = make_chain(dir.path);
  ASSERT_GE(paths.size(), 2u);
  ASSERT_EQ(::unlink(paths.front().c_str()), 0);
  EXPECT_THROW(load_chain(dir.path, kJob), CheckpointError);
}

TEST(CkptFormat, ForeignJobHasNoChain) {
  TempDir dir;
  make_chain(dir.path);
  EXPECT_TRUE(load_chain(dir.path, kJob + 1).empty());
  EXPECT_TRUE(load_chain(dir.path + "/nonexistent", kJob).empty());
}

// ---- Resume semantics ----

TEST(CkptResume, CorruptChainNeverPartiallyResumes) {
  TempDir dir;
  const auto paths = make_chain(dir.path);
  ASSERT_EQ(::truncate(paths.back().c_str(), 64), 0);
  Job job(Algo::FW, 32, 8, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
  job.register_with(ck);
  ck.bind(DagProblem::FloydWarshall, 32, 8, false);
  EXPECT_THROW(ck.resume(), CheckpointError);
  // Pass-1 validation failed, so pass 2 never ran: no page was installed
  // and the frontier is untouched.
  EXPECT_EQ(ck.done_leaves(), 0u);
  EXPECT_EQ(job.cache.stats().page_ins, 0u);
}

TEST(CkptResume, IncompatibleFingerprintRejected) {
  TempDir dir;
  make_chain(dir.path);  // FW, n=32, bs=8
  Job job(Algo::LU, 32, 8, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
  job.register_with(ck);
  ck.bind(DagProblem::LU, 32, 8, false);
  EXPECT_THROW(ck.resume(), CheckpointError);
}

TEST(CkptResume, ResumeBeforeBindRejected) {
  TempDir dir;
  Job job(Algo::FW, 32, 8, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
  job.register_with(ck);
  EXPECT_THROW(ck.resume(), CheckpointError);
}

TEST(CkptResume, CompletedJobReplaysFromSnapshotsAlone) {
  const index_t n = 32, bs = 8;
  TempDir dir;
  Matrix<double> ref;
  {
    Job job(Algo::FW, n, bs, 8);
    // Explicit-only triggers: the single checkpoint_now below is the
    // whole chain (a periodic cut on the final leaf would make it a
    // correctly-skipped no-op instead).
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path, 0));
    job.register_with(ck);
    job.load_input();
    job.run(&ck, false, false);
    ASSERT_TRUE(ck.checkpoint_now());
    ref = job.result();
  }
  // Fresh cache, fresh EMPTY matrices: the chain alone must rebuild the
  // final matrix, and the full frontier must skip every leaf.
  Job job(Algo::FW, n, bs, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
  job.register_with(ck);
  ck.bind(DagProblem::FloydWarshall, n, bs, false);
  ASSERT_TRUE(ck.resume());
  EXPECT_EQ(ck.done_leaves(), ck.task_count());
  const std::uint64_t pins_before = job.cache.stats().pins;
  job.run(&ck, false, false);
  EXPECT_EQ(job.cache.stats().pins, pins_before)
      << "a fully-done frontier must not execute (or pin) anything";
  EXPECT_TRUE(bit_identical(ref, job.result()));
}

TEST(CkptResume, ResumedJobAppendsToChain) {
  const index_t n = 32, bs = 8;
  TempDir dir;
  {
    Job job(Algo::FW, n, bs, 8, kill_after(40));
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    try {
      job.load_input();
      job.run(&ck, false, false);
    } catch (const std::exception&) {
    }
  }
  const std::size_t before = load_chain(dir.path, kJob).size();
  ASSERT_GT(before, 0u) << "kill landed before the first snapshot";
  {
    Job job(Algo::FW, n, bs, 8);
    CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path));
    job.register_with(ck);
    ck.bind(DagProblem::FloydWarshall, n, bs, false);
    ASSERT_TRUE(ck.resume());
    job.run(&ck, false, false);
    ck.checkpoint_now();
  }
  // load_chain itself validates seq contiguity and parent_crc links, so
  // a longer valid chain proves the resumed run appended correctly.
  EXPECT_GT(load_chain(dir.path, kJob).size(), before);
}

// ---- Triggers and quiesce protocol ----

TEST(CkptTrigger, ExplicitRequestAndSkipWhenUnchanged) {
  const index_t n = 32, bs = 8;
  TempDir dir;
  Job job(Algo::FW, n, bs, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path, /*every_n=*/0));
  job.register_with(ck);
  job.load_input();
  ck.request_checkpoint();  // consumed at the first leaf retirement
  job.run(&ck, false, false);
  EXPECT_EQ(ck.stats().count, 1u);
  EXPECT_TRUE(ck.checkpoint_now());   // pages changed since the request
  EXPECT_FALSE(ck.checkpoint_now());  // nothing new: skipped, not written
  const CheckpointStats s = ck.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_GE(s.skipped, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_GT(s.pages, 0u);
}

TEST(CkptTrigger, IntervalFromEnv) {
  ::setenv("GEP_CKPT_INTERVAL_SEC", "0.75", 1);
  EXPECT_DOUBLE_EQ(ckpt_interval_from_env(), 0.75);
  {
    PageCache cache(8 * 512, 512);
    CheckpointCoordinator ck(cache, CheckpointOptions{"/tmp", 1, 0, 0.0});
    EXPECT_DOUBLE_EQ(ck.options().interval_sec, 0.75);
  }
  ::setenv("GEP_CKPT_INTERVAL_SEC", "bogus", 1);
  EXPECT_DOUBLE_EQ(ckpt_interval_from_env(3.0), 3.0);
  ::unsetenv("GEP_CKPT_INTERVAL_SEC");
  EXPECT_DOUBLE_EQ(ckpt_interval_from_env(), 0.0);
}

TEST(CkptQuiesce, AbortedLeafPoisonsSnapshotsButKeepsChain) {
  const index_t n = 32, bs = 8;
  TempDir dir;
  Job job(Algo::FW, n, bs, 8);
  CheckpointCoordinator ck(job.cache, ckpt_opts(dir.path, 0));
  job.register_with(ck);
  ck.bind(DagProblem::FloydWarshall, n, bs, false);
  job.load_input();
  ASSERT_TRUE(ck.checkpoint_now());  // seq 0 lands before the "crash"
  const std::size_t chain_before = load_chain(dir.path, kJob).size();
  // A leaf dies mid-kernel: the coordinator must refuse to snapshot the
  // half-applied state, while the pre-abort chain stays usable.
  ck.leaf_enter();
  ck.leaf_abort();
  EXPECT_FALSE(ck.checkpoint_now());
  EXPECT_GE(ck.stats().skipped, 1u);
  EXPECT_EQ(load_chain(dir.path, kJob).size(), chain_before);
}

// ---- Deterministic kill knob ----

TEST(CkptKill, CrashPointIsDeterministic) {
  const std::uint64_t kill_at = 20;
  auto run_once = [&] {
    Job job(Algo::FW, 32, 8, 8, kill_after(kill_at));
    bool died = false;
    try {
      job.load_input();
      job.run(nullptr, false, false);
    } catch (const std::exception&) {
      died = true;
    }
    EXPECT_TRUE(died);
    return job.cache.fault_injector(job.mats[0]->file_id())->stats();
  };
  const FaultInjectorStats a = run_once();
  const FaultInjectorStats b = run_once();
  EXPECT_EQ(a.kills, 1u);
  EXPECT_EQ(b.kills, 1u);
  EXPECT_EQ(a.writes_seen, kill_at);
  EXPECT_EQ(b.writes_seen, kill_at);
}

TEST(CkptKill, DeadStoreRefusesEveryOperation) {
  FaultConfig cfg;
  cfg.kill_after_writes = 1;
  FaultInjector fi(std::make_unique<BlockFile>(256), cfg);
  std::vector<char> buf(256, 7);
  try {
    fi.write_page(0, buf.data());
    FAIL() << "the killing write must throw";
  } catch (const IoError& e) {
    EXPECT_FALSE(e.transient()) << "retry must not cure a crash";
  }
  EXPECT_TRUE(fi.killed());
  EXPECT_THROW(fi.write_page(1, buf.data()), IoError);
  EXPECT_THROW(fi.read_page(0, buf.data()), IoError);
  EXPECT_THROW(fi.sync(), IoError);
  // The killing write was torn: half the new bytes landed below.
  EXPECT_EQ(fi.stats().kills, 1u);
}

// ---- RobustStore sync ordering (data first, then sidecar) ----

class SyncFailsStore final : public BlockStore {
 public:
  explicit SyncFailsStore(std::uint64_t pb) : pb_(pb) {}
  void read_page(std::uint64_t, void* buf) override {
    std::memset(buf, 0, pb_);
  }
  void write_page(std::uint64_t, const void*) override {}
  void sync() override {
    ++sync_calls;
    throw IoError(IoError::Op::Write, 0, EIO, /*transient=*/false,
                  "injected sync failure");
  }
  std::uint64_t page_bytes() const override { return pb_; }
  int sync_calls = 0;

 private:
  std::uint64_t pb_;
};

TEST(CkptRobustStore, SidecarPersistsOnlyAfterDataSync) {
  RetryPolicy retry;
  retry.backoff_us = 0;
  // Inner sync fails: the CRC sidecar must NOT be persisted (a fresh
  // checksum over unsynced data is the ordering bug the data-first
  // contract forbids).
  {
    auto inner = std::make_unique<SyncFailsStore>(256);
    SyncFailsStore* raw = inner.get();
    RobustStore rs(std::move(inner), retry, /*checksums=*/true);
    std::vector<char> buf(256, 3);
    rs.write_page(0, buf.data());
    EXPECT_THROW(rs.sync(), IoError);
    EXPECT_EQ(raw->sync_calls, 1);
    EXPECT_EQ(rs.stats().sidecar_syncs, 0u);
  }
  // Healthy inner store: data sync first, then exactly one sidecar sync.
  {
    RobustStore rs(std::make_unique<BlockFile>(256), retry,
                   /*checksums=*/true);
    std::vector<char> buf(256, 4);
    rs.write_page(0, buf.data());
    rs.sync();
    EXPECT_EQ(rs.stats().sidecar_syncs, 1u);
  }
  // Checksums off: sync degrades to the inner sync alone.
  {
    RobustStore rs(std::make_unique<BlockFile>(256), retry,
                   /*checksums=*/false);
    std::vector<char> buf(256, 5);
    rs.write_page(0, buf.data());
    rs.sync();
    EXPECT_EQ(rs.stats().sidecar_syncs, 0u);
  }
}

}  // namespace
}  // namespace gep
