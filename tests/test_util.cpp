#include <gtest/gtest.h>

#include <sstream>

#include "util/aligned.hpp"
#include "util/cpuinfo.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gep {
namespace {

TEST(Aligned, ReturnsAlignedPointers) {
  for (std::size_t count : {1u, 7u, 64u, 1000u}) {
    auto p = make_aligned<double>(count);
    ASSERT_NE(p.get(), nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) % kCacheLineBytes, 0u);
  }
}

TEST(Aligned, ZeroCountGivesNull) {
  auto p = make_aligned<double>(0);
  EXPECT_EQ(p.get(), nullptr);
}

TEST(Prng, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Prng, DoublesInUnitInterval) {
  SplitMix64 g(7);
  for (int i = 0; i < 10000; ++i) {
    double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, UniformRespectsBounds) {
  SplitMix64 g(9);
  for (int i = 0; i < 1000; ++i) {
    double d = g.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Prng, BelowRespectsBound) {
  SplitMix64 g(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(g.below(17), 17u);
}

TEST(Timer, MeasuresForwardTime) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GE(t.seconds(), 0.0);
  double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(CpuInfo, SummaryNonEmptyAndNoThrow) {
  CpuInfo info = query_cpu_info();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_FALSE(info.summary().empty());
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream out;
  t.print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(-7), "-7");
}

TEST(Table, ShortRowsRenderEmptyCells) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace gep
