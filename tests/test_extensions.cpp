// Tests for the extension modules: transitive closure (or-and semiring),
// the GAP-problem alignment solver, banded update sets, and parallel
// C-GEP.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/gap_alignment.hpp"
#include "gep/cgep.hpp"
#include "gep/iterative.hpp"
#include "gep/igep.hpp"
#include "gep/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using apps::Engine;

// --- Transitive closure ---------------------------------------------------

Matrix<std::uint8_t> random_digraph(index_t n, std::uint64_t seed,
                                    double density) {
  SplitMix64 g(seed);
  Matrix<std::uint8_t> a(n, n, std::uint8_t{0});
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = 1;
    for (index_t j = 0; j < n; ++j) {
      if (i != j && g.chance(density)) a(i, j) = 1;
    }
  }
  return a;
}

// Reference reachability by BFS from every source.
Matrix<std::uint8_t> bfs_closure(const Matrix<std::uint8_t>& a) {
  const index_t n = a.rows();
  Matrix<std::uint8_t> r(n, n, std::uint8_t{0});
  for (index_t s = 0; s < n; ++s) {
    std::vector<index_t> stack{s};
    r(s, s) = 1;
    while (!stack.empty()) {
      index_t u = stack.back();
      stack.pop_back();
      for (index_t v = 0; v < n; ++v) {
        if (a(u, v) && !r(s, v)) {
          r(s, v) = 1;
          stack.push_back(v);
        }
      }
    }
  }
  return r;
}

class TransitiveClosure : public ::testing::TestWithParam<index_t> {};

TEST_P(TransitiveClosure, AllEnginesMatchBfs) {
  const index_t n = GetParam();
  for (double density : {0.02, 0.1, 0.4}) {
    Matrix<std::uint8_t> a =
        random_digraph(n, 7 + static_cast<unsigned>(n), density);
    Matrix<std::uint8_t> ref = bfs_closure(a);
    for (Engine e : {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                     Engine::CGep, Engine::CGepCompact}) {
      Matrix<std::uint8_t> r = a;
      apps::transitive_closure(r, e, {8, 1});
      bool same = true;
      for (index_t i = 0; i < n && same; ++i)
        for (index_t j = 0; j < n && same; ++j)
          same = ((r(i, j) != 0) == (ref(i, j) != 0));
      EXPECT_TRUE(same) << apps::engine_name(e) << " n=" << n
                        << " density=" << density;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransitiveClosure,
                         ::testing::Values(1, 2, 8, 13, 32, 50));

TEST(TransitiveClosure, ParallelMatchesSequential) {
  const index_t n = 64;
  Matrix<std::uint8_t> a = random_digraph(n, 99, 0.05);
  Matrix<std::uint8_t> seq = a, par = a;
  apps::transitive_closure(seq, Engine::IGep, {8, 1});
  apps::transitive_closure(par, Engine::IGep, {8, 4});
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) ASSERT_EQ(seq(i, j), par(i, j));
}

TEST(TransitiveClosure, RejectsBlockedEngine) {
  Matrix<std::uint8_t> a(4, 4, std::uint8_t{0});
  EXPECT_THROW(apps::transitive_closure(a, Engine::Blocked),
               std::invalid_argument);
}

// --- GAP alignment --------------------------------------------------------

struct GapCase {
  index_t rows, cols;
};

class GapAlignment : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapAlignment, RecursiveMatchesIterativeExactly) {
  auto [rows, cols] = GetParam();
  SplitMix64 g(rows * 131 + cols);
  // Random substitution costs and a concave gap cost (sqrt length).
  std::vector<double> sub(static_cast<std::size_t>(rows * cols));
  for (auto& x : sub) x = g.uniform(0.0, 2.0);
  auto s = [&, cols = cols](index_t i, index_t j) {
    return sub[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  };
  auto wg = [](index_t q, index_t j) {
    return 0.7 + 0.3 * std::sqrt(static_cast<double>(j - q));
  };
  Matrix<double> a(rows, cols), b(rows, cols);
  apps::gap_alignment_iterative(a, s, wg);
  apps::gap_alignment_recursive(b, s, wg, {4});
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << rows << "x" << cols << " @" << i << ","
                                  << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GapAlignment,
                         ::testing::Values(GapCase{2, 2}, GapCase{3, 5},
                                           GapCase{8, 8}, GapCase{9, 17},
                                           GapCase{16, 16}, GapCase{33, 20},
                                           GapCase{40, 64}, GapCase{65, 65}));

TEST(GapAlignment, BaseSizeInvariance) {
  const index_t rows = 33, cols = 29;
  auto s = [](index_t i, index_t j) {
    return (i * 7 + j * 3) % 5 == 0 ? 0.0 : 1.0;
  };
  auto wg = [](index_t q, index_t j) {
    return 1.0 + 0.5 * static_cast<double>(j - q);
  };
  Matrix<double> ref(rows, cols);
  apps::gap_alignment_iterative(ref, s, wg);
  for (index_t base : {2, 3, 8, 16, 64}) {
    Matrix<double> b(rows, cols);
    apps::gap_alignment_recursive(b, s, wg, {base});
    for (index_t i = 0; i < rows; ++i)
      for (index_t j = 0; j < cols; ++j)
        ASSERT_EQ(ref(i, j), b(i, j)) << "base=" << base;
  }
}

TEST(GapAlignment, AffineGapMatchesKnownEditDistance) {
  // With s = 0/2 (match/mismatch) and wg(q,j) = (j-q) (unit indels, no
  // opening cost), GAP degenerates to classic edit distance with
  // substitution cost 2 — check against a direct O(n²) Levenshtein-style
  // DP on actual strings.
  const std::string x = "GATTACAGATTACA", y = "GCATGCTTGACCA";
  const index_t rows = static_cast<index_t>(x.size()) + 1;
  const index_t cols = static_cast<index_t>(y.size()) + 1;
  auto s = [&](index_t i, index_t j) {
    return x[static_cast<std::size_t>(i - 1)] ==
                   y[static_cast<std::size_t>(j - 1)]
               ? 0.0
               : 2.0;
  };
  auto wg = [](index_t q, index_t j) { return static_cast<double>(j - q); };
  Matrix<double> g(rows, cols);
  apps::gap_alignment_recursive(g, s, wg, {4});

  // Classic quadratic DP.
  Matrix<double> d(rows, cols, 0.0);
  for (index_t i = 0; i < rows; ++i) d(i, 0) = static_cast<double>(i);
  for (index_t j = 0; j < cols; ++j) d(0, j) = static_cast<double>(j);
  for (index_t i = 1; i < rows; ++i) {
    for (index_t j = 1; j < cols; ++j) {
      d(i, j) = std::min({d(i - 1, j - 1) + s(i, j), d(i - 1, j) + 1.0,
                          d(i, j - 1) + 1.0});
    }
  }
  EXPECT_DOUBLE_EQ(g(rows - 1, cols - 1), d(rows - 1, cols - 1));
}

// --- Banded update sets ---------------------------------------------------

TEST(BandedSet, ConsistencyWithBruteForce) {
  const index_t n = 16;
  for (index_t band : {0, 1, 3, 7}) {
    BandedSet s{n, band};
    // next_k matches a scan.
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t k = 0; k < n; ++k) {
          index_t brute = kNoNextK;
          for (index_t kk = k + 1; kk < n; ++kk) {
            if (s.contains(i, j, kk)) {
              brute = kk;
              break;
            }
          }
          ASSERT_EQ(s.next_k(i, j, k), brute)
              << band << ":" << i << "," << j << "," << k;
        }
      }
    }
    // Box test has no false negatives and is exact.
    SplitMix64 g(11);
    for (int t = 0; t < 300; ++t) {
      index_t i1 = static_cast<index_t>(g.below(n)), i2 = i1 + static_cast<index_t>(g.below(n - i1));
      index_t j1 = static_cast<index_t>(g.below(n)), j2 = j1 + static_cast<index_t>(g.below(n - j1));
      index_t k1 = static_cast<index_t>(g.below(n)), k2 = k1 + static_cast<index_t>(g.below(n - k1));
      bool brute = false;
      for (index_t i = i1; i <= i2 && !brute; ++i)
        for (index_t j = j1; j <= j2 && !brute; ++j)
          for (index_t k = k1; k <= k2 && !brute; ++k)
            brute = s.contains(i, j, k);
      ASSERT_EQ(s.intersects_box(i1, i2, j1, j2, k1, k2), brute);
    }
  }
}

TEST(BandedSet, BandedMinPlusNeedsCGep) {
  // Restricting Σ to a band makes min-plus GEP *order-sensitive*: which
  // relaxations are available when an operand is read now depends on the
  // update schedule, so banded FW is NOT an I-GEP-legal instance — a
  // live illustration of why C-GEP's full generality matters. C-GEP
  // (both variants) must reproduce G exactly; I-GEP may legitimately
  // differ (and does, at this size/seed).
  const index_t n = 32;
  BandedSet sigma{n, 5};
  SplitMix64 g(3);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 50.0);
    init(i, i) = 0;
  }
  Matrix<double> ref = init, igep = init, cg = init, cgc = init;
  run_gep(ref, MinPlusF{}, sigma);
  run_igep(igep, MinPlusF{}, sigma, {4});
  run_cgep(cg, MinPlusF{}, sigma, {4});
  run_cgep_compact(cgc, MinPlusF{}, sigma, {4});
  EXPECT_TRUE(approx_equal(ref, cg, 1e-12));
  EXPECT_TRUE(approx_equal(ref, cgc, 1e-12));
  EXPECT_FALSE(approx_equal(ref, igep, 1e-12))
      << "banded min-plus unexpectedly became I-GEP-legal";
}

TEST(BandedSet, PruningSkipsWork) {
  const index_t n = 64;
  BandedSet narrow{n, 2};
  Matrix<double> c(n, n, 1.0);
  DirectAccess<double> acc(c.view());
  UpdateLogHook hook;
  run_igep(acc, MinPlusF{}, narrow, {1}, &hook);
  // |Σ| = sum over k of (#i in band)(#j in band) << n³.
  std::size_t expected = 0;
  for (index_t k = 0; k < n; ++k) {
    index_t span = std::min(k + 2, n - 1) - std::max<index_t>(k - 2, 0) + 1;
    expected += static_cast<std::size_t>(span * span);
  }
  EXPECT_EQ(hook.log.size(), expected);
}

// --- Parallel C-GEP -------------------------------------------------------

class ParallelCGep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCGep, MatchesSequentialOnSumF) {
  const int threads = GetParam();
  const index_t n = 64;
  SplitMix64 g(5);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
  Matrix<double> seq = init;
  run_cgep(seq, SumF{}, FullSet{n}, {8});

  Matrix<double> par = init;
  ThreadPool pool(threads);
  ParInvoker inv{&pool};
  run_cgep_parallel(inv, par, SumF{}, FullSet{n}, {8});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(ParallelCGep, MatchesSequentialOnLU) {
  const int threads = GetParam();
  const index_t n = 64;
  SplitMix64 g(6);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    init(i, i) += n + 2.0;
  }
  Matrix<double> seq = init;
  run_cgep(seq, LUIndexedF{}, LUSet{n}, {8});

  Matrix<double> par = init;
  ThreadPool pool(threads);
  ParInvoker inv{&pool};
  run_cgep_parallel(inv, par, LUIndexedF{}, LUSet{n}, {8});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelCGep, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace gep
