// Property tests: every UpdateSet's intersects_box and next_k must be
// consistent with brute-force evaluation of contains over the cube.
#include <gtest/gtest.h>

#include "gep/update_set.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

template <UpdateSet S>
bool brute_intersects(const S& s, index_t i1, index_t i2, index_t j1,
                      index_t j2, index_t k1, index_t k2) {
  for (index_t i = i1; i <= i2; ++i)
    for (index_t j = j1; j <= j2; ++j)
      for (index_t k = k1; k <= k2; ++k)
        if (s.contains(i, j, k)) return true;
  return false;
}

template <UpdateSet S>
index_t brute_next_k(const S& s, index_t n, index_t i, index_t j, index_t k) {
  for (index_t kk = k + 1; kk < n; ++kk)
    if (s.contains(i, j, kk)) return kk;
  return kNoNextK;
}

// intersects_box may be conservative (never false negatives); for the
// built-in closed-form sets we additionally require exactness.
template <UpdateSet S>
void check_boxes_exact(const S& s, index_t n, bool exact) {
  SplitMix64 g(123);
  for (int trial = 0; trial < 200; ++trial) {
    index_t i1 = static_cast<index_t>(g.below(static_cast<std::uint64_t>(n)));
    index_t i2 = i1 + static_cast<index_t>(
                          g.below(static_cast<std::uint64_t>(n - i1)));
    index_t j1 = static_cast<index_t>(g.below(static_cast<std::uint64_t>(n)));
    index_t j2 = j1 + static_cast<index_t>(
                          g.below(static_cast<std::uint64_t>(n - j1)));
    index_t k1 = static_cast<index_t>(g.below(static_cast<std::uint64_t>(n)));
    index_t k2 = k1 + static_cast<index_t>(
                          g.below(static_cast<std::uint64_t>(n - k1)));
    bool brute = brute_intersects(s, i1, i2, j1, j2, k1, k2);
    bool fast = s.intersects_box(i1, i2, j1, j2, k1, k2);
    if (brute) EXPECT_TRUE(fast) << "false negative box";
    if (exact && !brute) EXPECT_FALSE(fast) << "inexact box";
  }
}

template <UpdateSet S>
void check_next_k(const S& s, index_t n) {
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k)
        EXPECT_EQ(s.next_k(i, j, k), brute_next_k(s, n, i, j, k))
            << i << "," << j << "," << k;
}

TEST(FullSet, ContainsEverything) {
  FullSet s{8};
  EXPECT_TRUE(s.contains(0, 0, 0));
  EXPECT_TRUE(s.contains(7, 3, 5));
  check_boxes_exact(s, 8, true);
  check_next_k(s, 8);
}

TEST(GaussianSet, MatchesDefinition) {
  GaussianSet s{8};
  EXPECT_FALSE(s.contains(0, 0, 0));
  EXPECT_FALSE(s.contains(1, 0, 0));  // j == k excluded
  EXPECT_FALSE(s.contains(0, 1, 0));  // i == k excluded
  EXPECT_TRUE(s.contains(1, 1, 0));
  EXPECT_FALSE(s.contains(1, 1, 1));
  check_boxes_exact(s, 8, true);
  check_next_k(s, 8);
}

TEST(LUSet, MatchesDefinition) {
  LUSet s{8};
  EXPECT_TRUE(s.contains(1, 0, 0));   // j == k: multiplier update
  EXPECT_FALSE(s.contains(0, 1, 0));  // i == k excluded
  EXPECT_TRUE(s.contains(3, 3, 2));
  EXPECT_FALSE(s.contains(2, 1, 2));
  check_boxes_exact(s, 8, true);
  check_next_k(s, 8);
}

TEST(PredicateSet, ConservativeBoxesExactNextK) {
  auto s = make_predicate_set(8, [](index_t i, index_t j, index_t k) {
    return (i + j + k) % 3 == 0;
  });
  check_boxes_exact(s, 8, false);
  check_next_k(s, 8);
}

TEST(Tau, MatchesDefinition23) {
  LUSet s{8};
  // Updates on cell (4, 2): <4,2,k> needs k < 4 && k <= 2 -> k in {0,1,2}.
  EXPECT_EQ(tau(s, 4, 2, 7), 2);
  EXPECT_EQ(tau(s, 4, 2, 2), 2);
  EXPECT_EQ(tau(s, 4, 2, 1), 1);
  EXPECT_EQ(tau(s, 4, 2, 0), 0);
  // Cell (0, 5): no update has k < 0.
  EXPECT_EQ(tau(s, 0, 5, 7), -1);
}

TEST(Tau, ConsistentWithNextK) {
  GaussianSet s{8};
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      for (index_t k = 0; k < 8; ++k) {
        if (!s.contains(i, j, k)) continue;
        for (index_t l : {i - 1, i, j - 1, j}) {
          if (l < 0) continue;
          // k == tau(l) iff k <= l and no later update is <= l.
          bool direct = (tau(s, i, j, l) == k);
          bool via_next = (k <= l && s.next_k(i, j, k) > l);
          EXPECT_EQ(direct, via_next);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gep
