// Tests for the dependency-driven block-task runtime
// (parallel/task_graph.hpp): DAG completeness against the update-set
// oracle, schedule quality against the fork-join greedy oracle,
// bit-identical execution across thread counts and runtimes, lookahead
// hinting, and the out-of-core prefetch integration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "apps/apps.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "gep/typed.hpp"
#include "gep/update_set.hpp"
#include "parallel/dag_sim.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

// --- DAG construction -------------------------------------------------------

// Enumerates the (i, j, k) updates one task performs, mirroring the
// kernels' diagonal skip rules (kernels.hpp): GE/LU leaves skip
// already-eliminated rows/columns when the box overlaps the diagonal,
// and the LU multiplier step covers the j == k column when j0 == k0.
template <class Fn>
void for_each_update(DagProblem prob, const BlockTask& t, Fn&& fn) {
  const bool elim = prob == DagProblem::Gaussian || prob == DagProblem::LU;
  const bool di = elim && (t.kind == BoxKind::A || t.kind == BoxKind::B);
  const bool dj = elim && (t.kind == BoxKind::A || t.kind == BoxKind::C);
  for (index_t k = 0; k < t.m; ++k) {
    const index_t ilo = di ? k + 1 : 0;
    for (index_t i = ilo; i < t.m; ++i) {
      index_t jlo = 0;
      if (prob == DagProblem::Gaussian && dj) jlo = k + 1;
      if (prob == DagProblem::LU && dj) jlo = k;  // j == k: multiplier
      for (index_t j = jlo; j < t.m; ++j) {
        fn(t.i0 + i, t.j0 + j, t.k0 + k);
      }
    }
  }
}

// Every update the problem's Σ prescribes must be performed by exactly
// one task — the DAG neither drops nor duplicates work.
TEST(TaskGraphBuild, CoverageMatchesUpdateSetOracle) {
  const index_t n = 16, base = 4;
  for (DagProblem prob : {DagProblem::FloydWarshall, DagProblem::Gaussian,
                          DagProblem::LU, DagProblem::MatMul}) {
    TaskGraph g = build_typed_task_graph(prob, n, base);
    std::vector<int> count(static_cast<std::size_t>(n * n * n), 0);
    for (int id = 0; id < g.size(); ++id) {
      for_each_update(prob, g.task(id), [&](index_t i, index_t j, index_t k) {
        ++count[static_cast<std::size_t>((i * n + j) * n + k)];
      });
    }
    const FullSet full{n};
    const GaussianSet ge{n};
    const LUSet lu{n};
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t k = 0; k < n; ++k) {
          int want = 1;
          if (prob == DagProblem::Gaussian) want = ge.contains(i, j, k);
          if (prob == DagProblem::LU) want = lu.contains(i, j, k);
          if (prob == DagProblem::FloydWarshall ||
              prob == DagProblem::MatMul) {
            want = full.contains(i, j, k);
          }
          ASSERT_EQ(count[static_cast<std::size_t>((i * n + j) * n + k)],
                    want)
              << "prob=" << static_cast<int>(prob) << " (" << i << "," << j
              << "," << k << ")";
        }
      }
    }
  }
}

// The graph prices work identically to the fork-join DAG simulator and
// its structure is a valid finalized topological DAG.
TEST(TaskGraphBuild, StructureAndWorkMatchForkJoinDag) {
  const index_t n = 32, base = 4;
  for (DagProblem prob : {DagProblem::FloydWarshall, DagProblem::Gaussian,
                          DagProblem::LU, DagProblem::MatMul}) {
    std::vector<LeafBox> boxes;
    const SPNode sp = build_igep_dag(prob, n, base, &boxes);
    TaskGraph g = build_typed_task_graph(prob, n, base);
    EXPECT_EQ(g.size(), static_cast<int>(boxes.size()));
    EXPECT_DOUBLE_EQ(g.work(), dag_work(sp));
    EXPECT_GT(g.span(), 0.0);
    EXPECT_LE(g.span(), g.work());
    // Emission order is topological: every edge points forward, and a
    // task's priority (critical path to exit) exceeds its successors'.
    std::size_t edges = 0;
    std::vector<int> preds(static_cast<std::size_t>(g.size()), 0);
    for (int id = 0; id < g.size(); ++id) {
      for (int s : g.successors(id)) {
        ASSERT_GT(s, id);
        ASSERT_GT(g.priority(id), g.priority(s));
        ++preds[static_cast<std::size_t>(s)];
        ++edges;
      }
    }
    EXPECT_EQ(edges, g.edge_count());
    for (int id = 0; id < g.size(); ++id) {
      EXPECT_EQ(preds[static_cast<std::size_t>(id)], g.pred_count(id));
    }
    // initial_ready: exactly the zero-predecessor tasks, best first.
    const std::vector<int>& r0 = g.initial_ready();
    std::size_t roots = 0;
    for (int id = 0; id < g.size(); ++id) {
      roots += g.pred_count(id) == 0 ? 1u : 0u;
    }
    EXPECT_EQ(r0.size(), roots);
    for (std::size_t i = 1; i < r0.size(); ++i) {
      EXPECT_GE(g.priority(r0[i - 1]), g.priority(r0[i]));
    }
  }
}

// --- schedule quality -------------------------------------------------------

// The block-dependency DAG is the fork-join DAG minus barrier edges, so
// the same greedy policy must never schedule it worse — this is the
// oracle check the runtime's whole premise rests on.
TEST(TaskGraphSchedule, MakespanNoWorseThanForkJoinOracle) {
  const index_t n = 64, base = 8;
  for (DagProblem prob : {DagProblem::FloydWarshall, DagProblem::Gaussian,
                          DagProblem::LU, DagProblem::MatMul}) {
    const SPNode sp = build_igep_dag(prob, n, base);
    TaskGraph g = build_typed_task_graph(prob, n, base);
    EXPECT_NEAR(task_graph_makespan(g, 1), g.work(), 1e-6 * g.work());
    for (int p : {2, 4, 8, 16}) {
      const double dag = task_graph_makespan(g, p);
      const double fj = dag_makespan(sp, p);
      EXPECT_LE(dag, fj * (1.0 + 1e-9))
          << "prob=" << static_cast<int>(prob) << " p=" << p;
      EXPECT_GE(dag, g.span() * (1.0 - 1e-9));
      EXPECT_GE(dag, g.work() / p * (1.0 - 1e-9));
    }
  }
}

// --- execution --------------------------------------------------------------

Matrix<double> random_dist(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 100.0);
    m(i, i) = 0.0;
  }
  return m;
}

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1, 1);
    m(i, i) += static_cast<double>(n);  // diagonally dominant: safe pivots
  }
  return m;
}

void expect_bit_identical(const Matrix<double>& got, const Matrix<double>& ref,
                          const char* what) {
  ASSERT_EQ(got.rows(), ref.rows());
  for (index_t i = 0; i < ref.rows(); ++i) {
    for (index_t j = 0; j < ref.cols(); ++j) {
      ASSERT_EQ(got(i, j), ref(i, j))
          << what << " at (" << i << "," << j << ")";
    }
  }
}

// Any topological execution replays each block's update sequence in
// sequential order, so every schedule is bit-identical to the
// sequential typed engine — at 1 thread, 2, and enough to oversubscribe.
TEST(TaskGraphRun, FloydWarshallBitIdenticalAcrossThreadCounts) {
  const index_t n = 64, bs = 8;
  const Matrix<double> init = random_dist(n, 123);
  Matrix<double> ref = init;
  {
    RowMajorStore<double> st{ref.data(), n, bs};
    SeqInvoker inv;
    igep_floyd_warshall(inv, st, n, {bs});
  }
  {
    Matrix<double> m = init;  // DAG, sequential engine (no pool)
    RowMajorStore<double> st{m.data(), n, bs};
    igep_floyd_warshall_dag(nullptr, st, n, {bs});
    expect_bit_identical(m, ref, "dag seq");
  }
  for (int threads : {2, 4, 8}) {
    Matrix<double> m = init;
    RowMajorStore<double> st{m.data(), n, bs};
    WorkStealingPool pool(threads);
    igep_floyd_warshall_dag(&pool, st, n, {bs});
    expect_bit_identical(m, ref, "dag parallel");
  }
}

TEST(TaskGraphRun, LuBitIdenticalAcrossThreadCounts) {
  const index_t n = 64, bs = 8;
  const Matrix<double> init = random_dd(n, 321);
  Matrix<double> ref = init;
  {
    RowMajorStore<double> st{ref.data(), n, bs};
    SeqInvoker inv;
    igep_lu(inv, st, n, {bs});
  }
  for (int threads : {1, 2, 4}) {
    Matrix<double> m = init;
    RowMajorStore<double> st{m.data(), n, bs};
    if (threads == 1) {
      igep_lu_dag(nullptr, st, n, {bs});
    } else {
      WorkStealingPool pool(threads);
      igep_lu_dag(&pool, st, n, {bs});
    }
    expect_bit_identical(m, ref, "lu dag");
  }
}

// The app entry points honor RunOptions::runtime — every problem routed
// through Runtime::Dag matches its fork-join twin bitwise, including
// the padding paths (non-pow2 n) and the z-layout engines.
TEST(TaskGraphRun, AppsRuntimeDagMatchesForkJoin) {
  const index_t n = 48;  // non-pow2: exercises padding
  for (apps::Engine eng : {apps::Engine::IGep, apps::Engine::IGepZ}) {
    {
      Matrix<double> a = random_dist(n, 7), b = a;
      apps::floyd_warshall(a, eng, {16, 4, apps::Runtime::ForkJoin});
      apps::floyd_warshall(b, eng, {16, 4, apps::Runtime::Dag});
      expect_bit_identical(b, a, "apps fw");
    }
    {
      Matrix<double> a = random_dd(n, 8), b = a;
      apps::lu_decompose(a, eng, {16, 1, apps::Runtime::ForkJoin});
      apps::lu_decompose(b, eng, {16, 4, apps::Runtime::Dag});
      expect_bit_identical(b, a, "apps lu");
    }
    {
      Matrix<double> a = random_dd(n, 9), b = a;
      apps::gaussian_eliminate(a, eng, {16, 4, apps::Runtime::ForkJoin});
      apps::gaussian_eliminate(b, eng, {16, 4, apps::Runtime::Dag});
      expect_bit_identical(b, a, "apps ge");
    }
    {
      Matrix<double> x = random_dd(n, 10), y = random_dd(n, 11);
      Matrix<double> c1(n, n, 0.0), c2(n, n, 0.0);
      apps::multiply_add(c1, x, y, eng, {16, 4, apps::Runtime::ForkJoin});
      apps::multiply_add(c2, x, y, eng, {16, 4, apps::Runtime::Dag});
      expect_bit_identical(c2, c1, "apps mm");
    }
    {
      Matrix<double> a = random_dist(n, 12), b = a;
      apps::bottleneck_paths(a, eng, {16, 4, apps::Runtime::ForkJoin});
      apps::bottleneck_paths(b, eng, {16, 4, apps::Runtime::Dag});
      expect_bit_identical(b, a, "apps bottleneck");
    }
    {
      SplitMix64 g(13);
      Matrix<std::uint8_t> r1(n, n);
      for (index_t i = 0; i < n; ++i) {
        for (index_t j = 0; j < n; ++j) {
          r1(i, j) = g.chance(0.1) ? 1 : 0;
        }
        r1(i, i) = 1;
      }
      Matrix<std::uint8_t> r2 = r1;
      apps::transitive_closure(r1, eng, {16, 4, apps::Runtime::ForkJoin});
      apps::transitive_closure(r2, eng, {16, 4, apps::Runtime::Dag});
      for (index_t i = 0; i < n; ++i) {
        for (index_t j = 0; j < n; ++j) ASSERT_EQ(r2(i, j), r1(i, j));
      }
    }
  }
}

// A leaf failure stops dependents and rethrows from run_task_graph,
// matching the fork-join invoker's contract.
TEST(TaskGraphRun, LeafExceptionPropagates) {
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, 32, 8);
  WorkStealingPool pool(4);
  EXPECT_THROW(
      run_task_graph(g, &pool,
                     [&](const BlockTask& t) {
                       if (t.i0 == 8 && t.j0 == 8 && t.k0 == 0) {
                         throw std::runtime_error("boom");
                       }
                     }),
      std::runtime_error);
}

// --- lookahead / prefetch hook ----------------------------------------------

using TaskKey = std::tuple<index_t, index_t, index_t, index_t>;

TaskKey key_of(const BlockTask& t) { return {t.i0, t.j0, t.k0, t.m}; }

// The lookahead window announces each task to the prefetch hook at most
// once, for every depth, sequentially and in parallel.
TEST(TaskGraphRun, LookaheadHintsEachTaskAtMostOnce) {
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, 32, 8);
  for (int lookahead : {1, 4, 16}) {
    for (int threads : {1, 4}) {
      std::mutex mu;
      std::map<TaskKey, int> hinted;
      TaskRuntimeOptions ro;
      ro.lookahead = lookahead;
      ro.prefetch = [&](const BlockTask& t) {
        std::lock_guard<std::mutex> lock(mu);
        ++hinted[key_of(t)];
      };
      auto leaf = [](const BlockTask&) {};
      if (threads == 1) {
        run_task_graph(g, nullptr, leaf, ro);
      } else {
        WorkStealingPool pool(threads);
        run_task_graph(g, &pool, leaf, ro);
      }
      EXPECT_GT(hinted.size(), 0u)
          << "lookahead=" << lookahead << " threads=" << threads;
      EXPECT_LE(hinted.size(), static_cast<std::size_t>(g.size()));
      for (const auto& [k, c] : hinted) {
        EXPECT_EQ(c, 1) << "task hinted twice";
      }
    }
  }
  // Deeper lookahead never hints fewer tasks in the sequential engine
  // (the cursor covers a superset of the shallower window).
  std::size_t prev = 0;
  for (int lookahead : {1, 4, 16}) {
    std::map<TaskKey, int> hinted;
    TaskRuntimeOptions ro;
    ro.lookahead = lookahead;
    ro.prefetch = [&](const BlockTask& t) { ++hinted[key_of(t)]; };
    run_task_graph(g, nullptr, [](const BlockTask&) {}, ro);
    EXPECT_GE(hinted.size(), prev) << "lookahead=" << lookahead;
    prev = hinted.size();
  }
}

// --- prefetch dedupe (satellite: hint-storm fix) ----------------------------

TEST(PrefetchDeduper, SuppressesRepeatsWithinWindow) {
  const std::uint64_t before =
      obs::counter("extmem.prefetch.hints_deduped").value();
  detail::PrefetchDeduper d(4);
  EXPECT_TRUE(d.should_hint(0, 1, 1));
  EXPECT_FALSE(d.should_hint(0, 1, 1));  // duplicate suppressed
  EXPECT_TRUE(d.should_hint(1, 1, 1));   // different matrix: distinct
  EXPECT_TRUE(d.should_hint(0, 1, 2));
  EXPECT_TRUE(d.should_hint(0, 2, 1));
  EXPECT_TRUE(d.should_hint(0, 2, 2));  // evicts (0,1,1) from the window
  EXPECT_TRUE(d.should_hint(0, 1, 1));  // aged out: legal to re-hint
  if (obs::kEnabled) {
    EXPECT_EQ(obs::counter("extmem.prefetch.hints_deduped").value(),
              before + 1);
  }
}

// The fork-join OOC hint path must dedupe the sibling-corner storms:
// with the 64-tile window, issued prefetches stay below the raw corner
// hint count (3 per corner, corners revisited per k-stage).
TEST(PrefetchDeduper, OocHintPathSuppressesStorms) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * 8;
  const std::uint64_t before =
      obs::counter("extmem.prefetch.hints_deduped").value();
  PageCache cache(32 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(random_dist(n, 5));
  SeqInvoker inv;
  ooc_igep_floyd_warshall(m, inv, {.prefetch = true});
  // No async worker: every surviving hint is counted as dropped, and
  // every suppressed duplicate into the dedupe counter. At GEP_OBS=0
  // the counter is a stub; the driver above still exercises the path.
  if (obs::kEnabled) {
    EXPECT_GT(obs::counter("extmem.prefetch.hints_deduped").value(), before);
  }
}

// --- out-of-core DAG drivers ------------------------------------------------

// DAG-scheduled out-of-core FW with scheduler-driven prefetch: results
// bit-identical to the sequential engine, and the ready-frontier hints
// must serve the async worker at least as well as the recursion's
// one-stage-ahead corner hints (small slack absorbs worker timing; the
// fig7 bench asserts the strict comparison on real runs).
TEST(OocDag, FloydWarshallPrefetchHitRateMatchesOrBeatsStageHints) {
  const index_t n = 128, bs = 16;
  const std::uint64_t B = bs * bs * 8;
  const Matrix<double> init = random_dist(n, 42);

  PageCache c_seq(16 * B, B);
  OocTiledMatrix<double> m_seq(c_seq, n, n, bs);
  m_seq.load(init);
  ooc_igep_floyd_warshall(m_seq);
  const Matrix<double> ref = m_seq.to_matrix();

  // Old path: fork-join engine, recursion-corner hints.
  PageCache c_old(48 * B, B);
  OocTiledMatrix<double> m_old(c_old, n, n, bs);
  m_old.load(init);
  c_old.enable_async_io();
  {
    WorkStealingPool pool(4);
    WsParInvoker inv{&pool};
    ooc_igep_floyd_warshall(m_old, inv, {.prefetch = true});
  }
  c_old.disable_async_io();
  expect_bit_identical(m_old.to_matrix(), ref, "ooc fw old");

  // New path: DAG runtime, ready-frontier lookahead hints.
  PageCache c_dag(48 * B, B);
  OocTiledMatrix<double> m_dag(c_dag, n, n, bs);
  m_dag.load(init);
  c_dag.enable_async_io();
  {
    WorkStealingPool pool(4);
    ooc_igep_floyd_warshall_dag(m_dag, &pool, {.lookahead = 4});
  }
  c_dag.disable_async_io();
  expect_bit_identical(m_dag.to_matrix(), ref, "ooc fw dag");

  const PageCacheStats so = c_old.stats();
  const PageCacheStats sd = c_dag.stats();
  EXPECT_GT(sd.prefetch_issued, 0u);
  EXPECT_GE(sd.prefetch_hit_rate(), so.prefetch_hit_rate() - 0.10)
      << "dag=" << sd.prefetch_hit_rate()
      << " old=" << so.prefetch_hit_rate();
}

TEST(OocDag, LuMatchesSequentialBitForBit) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * 8;
  const Matrix<double> init = random_dd(n, 77);
  PageCache c_seq(16 * B, B);
  OocTiledMatrix<double> m_seq(c_seq, n, n, bs);
  m_seq.load(init);
  ooc_igep_lu(m_seq);
  const Matrix<double> ref = m_seq.to_matrix();

  PageCache cache(48 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  cache.enable_async_io();
  {
    WorkStealingPool pool(4);
    ooc_igep_lu_dag(m, &pool, {.lookahead = 4});
  }
  cache.disable_async_io();
  expect_bit_identical(m.to_matrix(), ref, "ooc lu dag");
}

TEST(OocDag, MatmulMatchesInCore) {
  const index_t n = 32, bs = 8;
  const std::uint64_t B = bs * bs * 8;
  const Matrix<double> a = random_dd(n, 1), b = random_dd(n, 2);
  Matrix<double> ref(n, n, 0.0);
  {
    RowMajorStore<double> cst{ref.data(), n, bs};
    RowMajorStore<const double> ast{a.data(), n, bs};
    RowMajorStore<const double> bst{b.data(), n, bs};
    SeqInvoker inv;
    igep_matmul(inv, cst, ast, bst, n, {bs});
  }
  PageCache cache(64 * B, B);
  OocTiledMatrix<double> mc(cache, n, n, bs), ma(cache, n, n, bs),
      mb(cache, n, n, bs);
  mc.load(Matrix<double>(n, n, 0.0));
  ma.load(a);
  mb.load(b);
  WorkStealingPool pool(2);
  ooc_igep_matmul_dag(mc, ma, mb, &pool, {.lookahead = 2});
  expect_bit_identical(mc.to_matrix(), ref, "ooc mm dag");
}

// --- env pins ---------------------------------------------------------------

TEST(TaskGraphEnv, RuntimeAndLookaheadFromEnv) {
  const char* old_rt = std::getenv("GEP_DAG_RUNTIME");
  const char* old_la = std::getenv("GEP_DAG_LOOKAHEAD");
  const std::string saved_rt = old_rt != nullptr ? old_rt : "";
  const std::string saved_la = old_la != nullptr ? old_la : "";

  ::unsetenv("GEP_DAG_RUNTIME");
  EXPECT_EQ(runtime_from_env(), RuntimeKind::ForkJoin);
  EXPECT_EQ(runtime_from_env(RuntimeKind::Dag), RuntimeKind::Dag);
  ::setenv("GEP_DAG_RUNTIME", "1", 1);
  EXPECT_EQ(runtime_from_env(), RuntimeKind::Dag);
  ::setenv("GEP_DAG_RUNTIME", "0", 1);
  EXPECT_EQ(runtime_from_env(RuntimeKind::Dag), RuntimeKind::ForkJoin);

  ::unsetenv("GEP_DAG_LOOKAHEAD");
  EXPECT_EQ(dag_lookahead_from_env(), 4);
  EXPECT_EQ(dag_lookahead_from_env(7), 7);
  ::setenv("GEP_DAG_LOOKAHEAD", "12", 1);
  EXPECT_EQ(dag_lookahead_from_env(), 12);

  if (old_rt != nullptr) {
    ::setenv("GEP_DAG_RUNTIME", saved_rt.c_str(), 1);
  } else {
    ::unsetenv("GEP_DAG_RUNTIME");
  }
  if (old_la != nullptr) {
    ::setenv("GEP_DAG_LOOKAHEAD", saved_la.c_str(), 1);
  } else {
    ::unsetenv("GEP_DAG_LOOKAHEAD");
  }
}

}  // namespace
}  // namespace gep
