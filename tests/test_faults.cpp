// Fault-tolerance matrix: injected I/O faults, checksum validation,
// retry/backoff, PageCache recovery invariants, async-worker
// degradation, and numeric breakdown guards.
//
// Every suite name starts with "Fault" so CI can run the whole matrix
// with `ctest -R 'Fault'`. Injection seeds default to 1 and are
// overridable via GEP_FAULT_SEED (the CI job runs seeds 1..3); every
// probabilistic test pairs its probabilities with a retry budget deep
// enough that the survival guarantee holds for ANY seed.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "extmem/fault_injector.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "extmem/robust_store.hpp"
#include "apps/linear_solver.hpp"
#include "gep/numeric_guard.hpp"
#include "obs/watchdog.hpp"
#include "parallel/work_stealing.hpp"
#include "util/crc32c.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

// The stall watchdog stays armed across the whole fault matrix: the
// injected transients (default 2ms latency spikes, retry storms, CRC
// re-reads) must never be mistaken for a stall at a realistic
// threshold, for ANY seed CI feeds through GEP_FAULT_SEED.
class ArmedWatchdog : public ::testing::Environment {
 public:
  void SetUp() override {
    baseline_ = obs::Watchdog::stalls_detected();
    obs::Watchdog::Options o;
    o.threshold_ms = 2000.0;
    o.dump_on_stall = false;
    started_ = obs::Watchdog::start(o);
  }
  void TearDown() override {
    if (!started_) return;  // GEP_OBS=0 or already running elsewhere
    obs::Watchdog::stop();
    EXPECT_EQ(obs::Watchdog::stalls_detected(), baseline_)
        << "injected faults must not trip the stall watchdog";
  }

 private:
  std::uint64_t baseline_ = 0;
  bool started_ = false;
};

const ::testing::Environment* const kArmedWatchdog =
    ::testing::AddGlobalTestEnvironment(new ArmedWatchdog);

std::uint64_t env_seed() {
  const char* e = std::getenv("GEP_FAULT_SEED");
  if (e == nullptr || *e == '\0') return 1;
  return std::strtoull(e, nullptr, 10);
}

constexpr std::uint64_t kPage = 256;

// RobustStore over FaultInjector over BlockFile, with the injector
// still reachable for targeted faults.
struct Stack {
  FaultInjector* inj;
  RobustStore store;

  Stack(FaultConfig cfg, RetryPolicy retry, bool checksums = true)
      : inj(nullptr), store(make(cfg, &inj), retry, checksums) {}

  static std::unique_ptr<BlockStore> make(FaultConfig cfg,
                                          FaultInjector** out) {
    auto fi = std::make_unique<FaultInjector>(
        std::make_unique<BlockFile>(kPage), cfg);
    *out = fi.get();
    return fi;
  }
};

std::vector<char> pattern_page(std::uint64_t tag) {
  std::vector<char> buf(kPage);
  SplitMix64 g(tag * 2654435761u + 1);
  for (char& c : buf) c = static_cast<char>(g.next());
  return buf;
}

TEST(FaultCrc32c, KnownVectorAndSeedChaining) {
  // The canonical CRC32C check string.
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(s, 0), 0u);
  // Incremental (seed-chained) computation matches one-shot.
  const std::uint32_t head = crc32c(s, 4);
  EXPECT_EQ(crc32c(s + 4, 5, head), crc32c(s, 9));
  // Any bit flip changes the sum.
  std::vector<char> buf = pattern_page(7);
  const std::uint32_t clean = crc32c(buf.data(), buf.size());
  buf[100] = static_cast<char>(buf[100] ^ 0x10);
  EXPECT_NE(crc32c(buf.data(), buf.size()), clean);
}

TEST(FaultInjector, DeterministicForAFixedSeed) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.p_read_error = 0.3;
  cfg.p_bitflip_read = 0.3;
  auto run = [&] {
    FaultInjector fi(std::make_unique<BlockFile>(kPage), cfg);
    std::vector<char> buf(kPage);
    std::uint64_t errors = 0;
    for (int i = 0; i < 200; ++i) {
      try {
        fi.read_page(static_cast<std::uint64_t>(i % 8), buf.data());
      } catch (const IoError&) {
        ++errors;
      }
    }
    const FaultInjectorStats s = fi.stats();
    EXPECT_EQ(s.read_errors, errors);
    return s;
  };
  const FaultInjectorStats a = run();
  const FaultInjectorStats b = run();
  EXPECT_EQ(a.read_errors, b.read_errors);
  EXPECT_EQ(a.bitflips, b.bitflips);
  EXPECT_GT(a.read_errors + a.bitflips, 0u);
}

TEST(FaultInjector, TypedErrorsCarryPageAndErrno) {
  FaultConfig cfg;
  cfg.install = true;
  FaultInjector fi(std::make_unique<BlockFile>(kPage), cfg);
  fi.set_hard_fault(5, /*reads=*/true, /*writes=*/true);
  std::vector<char> buf(kPage);
  try {
    fi.read_page(5, buf.data());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), IoError::Op::Read);
    EXPECT_EQ(e.page(), 5u);
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_FALSE(e.transient());
    const std::string what = e.what();
    EXPECT_NE(what.find("page 5"), std::string::npos) << what;
    EXPECT_NE(what.find(std::strerror(EIO)), std::string::npos) << what;
  }
  EXPECT_THROW(fi.write_page(5, buf.data()), IoError);
  fi.clear_hard_faults();
  EXPECT_NO_THROW(fi.write_page(5, buf.data()));
}

TEST(FaultRobustStore, TransientErrorsAreRetriedToSuccess) {
  FaultConfig cfg;
  cfg.seed = env_seed();
  cfg.p_read_error = 0.25;
  cfg.p_write_error = 0.25;
  RetryPolicy retry;
  retry.max_attempts = 12;  // 0.25^12: unreachable for any seed
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  for (std::uint64_t p = 0; p < 16; ++p) {
    const std::vector<char> w = pattern_page(p);
    s.store.write_page(p, w.data());
  }
  std::vector<char> r(kPage);
  for (std::uint64_t p = 0; p < 16; ++p) {
    s.store.read_page(p, r.data());
    EXPECT_EQ(r, pattern_page(p)) << "page " << p;
  }
  EXPECT_GT(s.store.stats().retries, 0u);
  EXPECT_EQ(s.store.stats().hard_failures, 0u);
}

TEST(FaultRobustStore, ChecksumCatchesEveryAtRestCorruption) {
  // Zero false negatives: 64 independent single-bit at-rest flips, all
  // below the checksum layer, every one must surface as CorruptPageError.
  FaultConfig cfg;
  cfg.install = true;
  RetryPolicy retry;
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  std::vector<char> r(kPage);
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    const std::vector<char> w = pattern_page(trial);
    s.store.write_page(trial, w.data());
    // Spread bit positions across the page: first, last, and a stride
    // covering every byte-in-word and word-in-page combination.
    const std::uint64_t bit =
        trial == 0 ? 0
                   : (trial == 1 ? kPage * 8 - 1 : (trial * 131) % (kPage * 8));
    s.inj->corrupt_stored_page(trial, bit);
    try {
      s.store.read_page(trial, r.data());
      FAIL() << "corruption escaped at trial " << trial << " bit " << bit;
    } catch (const CorruptPageError& e) {
      EXPECT_EQ(e.page(), trial);
      EXPECT_NE(e.expected_crc(), e.actual_crc());
      EXPECT_FALSE(e.transient());
    }
  }
  EXPECT_GE(s.store.stats().crc_failures, 64u);
}

TEST(FaultRobustStore, InFlightBitflipsAreCuredByReread) {
  FaultConfig cfg;
  cfg.seed = env_seed();
  cfg.p_bitflip_read = 0.25;
  RetryPolicy retry;
  retry.max_attempts = 12;
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  const std::vector<char> w = pattern_page(3);
  s.store.write_page(0, w.data());
  std::vector<char> r(kPage);
  for (int i = 0; i < 200; ++i) {
    s.store.read_page(0, r.data());
    ASSERT_EQ(r, w) << "read " << i;
  }
  // ~50 of 200 reads flip in flight; every affected op was cured. A
  // retry can itself flip (several crc_failures inside one op), so
  // recoveries counts ops, failures counts mismatches.
  const RobustStoreStats st = s.store.stats();
  EXPECT_GT(st.crc_failures, 0u);
  EXPECT_GT(st.crc_recoveries, 0u);
  EXPECT_LE(st.crc_recoveries, st.crc_failures);
  EXPECT_EQ(st.hard_failures, 0u);
}

TEST(FaultRobustStore, HardFaultThrowsTypedWithoutRetry) {
  FaultConfig cfg;
  cfg.install = true;
  RetryPolicy retry;
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  s.inj->set_hard_fault(2, /*reads=*/true, /*writes=*/false);
  std::vector<char> buf(kPage);
  EXPECT_THROW(s.store.read_page(2, buf.data()), IoError);
  // Non-transient: one attempt, no retries burned.
  EXPECT_EQ(s.store.stats().retries, 0u);
  EXPECT_EQ(s.store.stats().hard_failures, 1u);
}

TEST(FaultRobustStore, BurstBeyondBudgetExhaustsRetries) {
  FaultConfig cfg;
  cfg.p_read_error = 1.0;
  cfg.error_burst = 1 << 20;  // effectively hard, but transient-typed
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  std::vector<char> buf(kPage);
  try {
    s.store.read_page(0, buf.data());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_TRUE(e.transient());  // each individual failure was transient
  }
  EXPECT_EQ(s.store.stats().retries, 3u);  // budget fully spent
  EXPECT_EQ(s.store.stats().hard_failures, 1u);
}

TEST(FaultRobustStore, TornWriteLeavesStaleCrcDetectedOnRead) {
  // max_attempts = 1: a tear is never repaired by the retry loop, so
  // the mixed-content page stays on disk with the PREVIOUS write's
  // checksum in the sidecar — exactly the crash-mid-write scenario the
  // next read must catch.
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.p_torn_write = 0.5;
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  // Unique content per write so any tear mixes two DIFFERENT payloads.
  // Keep writing until a tear lands on top of a successful write.
  int successes = 0;
  bool torn_over_good_data = false;
  for (int i = 0; i < 200 && !torn_over_good_data; ++i) {
    const std::vector<char> w = pattern_page(100 + static_cast<unsigned>(i));
    try {
      s.store.write_page(0, w.data());
      ++successes;
    } catch (const IoError& e) {
      EXPECT_TRUE(e.transient());
      if (successes > 0) torn_over_good_data = true;
    }
  }
  ASSERT_TRUE(torn_over_good_data);
  std::vector<char> r(kPage);
  EXPECT_THROW(s.store.read_page(0, r.data()), CorruptPageError);
}

TEST(FaultRobustStore, TornWriteRepairedByRetry) {
  FaultConfig cfg;
  cfg.seed = env_seed();
  cfg.p_torn_write = 0.4;
  RetryPolicy retry;
  retry.max_attempts = 16;  // 0.4^16 ~ 4e-7: safe for any seed
  retry.backoff_us = 0;
  Stack s(cfg, retry);
  std::vector<char> r(kPage);
  // 32 writes: P(no tear at all) = 0.6^32 ~ 8e-8 for any seed.
  for (std::uint64_t p = 0; p < 32; ++p) {
    const std::vector<char> w = pattern_page(p + 100);
    s.store.write_page(p, w.data());
    s.store.read_page(p, r.data());
    EXPECT_EQ(r, w) << "page " << p;
  }
  EXPECT_GT(s.inj->stats().torn_writes, 0u);
  EXPECT_GT(s.store.stats().retries, 0u);
}

TEST(FaultRobustStore, ChecksumsOffAcceptsCorruptData) {
  // Documents the knob: with checksums disabled the corruption flows
  // through silently — the reason RobustOptions defaults them on.
  FaultConfig cfg;
  cfg.install = true;
  RetryPolicy retry;
  retry.backoff_us = 0;
  Stack s(cfg, retry, /*checksums=*/false);
  const std::vector<char> w = pattern_page(5);
  s.store.write_page(0, w.data());
  s.inj->corrupt_stored_page(0, 77);
  std::vector<char> r(kPage);
  EXPECT_NO_THROW(s.store.read_page(0, r.data()));
  EXPECT_NE(r, w);
}

// ---- PageCache recovery invariants (satellite b) ----

RobustOptions install_only() {
  RobustOptions r;
  r.faults.install = true;
  r.retry.backoff_us = 0;
  return r;
}

TEST(FaultPageCache, EvictionWritebackFailureKeepsVictimDirtyAndIntact) {
  PageCache cache(2 * kPage, kPage, {}, install_only());
  const int f = cache.register_file(16);
  FaultInjector* inj = cache.fault_injector(f);
  ASSERT_NE(inj, nullptr);

  char* p0 = static_cast<char*>(cache.pin(f, 0, true));
  std::memset(p0, 42, kPage);
  cache.pin(f, 1, false);

  // Page 0's frame is the LRU victim; its write-back now hard-fails.
  inj->set_hard_fault(0, /*reads=*/false, /*writes=*/true);
  EXPECT_THROW(cache.pin(f, 2, false), IoError);
  EXPECT_GE(cache.stats().writeback_failures, 1u);

  // Invariant: the victim kept its mapping, its data, and its dirty bit
  // — and no frame leaked io_busy (the next fault would hang if so).
  char* back = static_cast<char*>(cache.pin(f, 0, false));
  EXPECT_EQ(back[0], 42);
  EXPECT_EQ(cache.stats().hits, 1u) << "page 0 must still be resident";

  // After the fault clears, the eviction (and its write-back) succeeds.
  inj->clear_hard_faults();
  EXPECT_NO_THROW(cache.pin(f, 2, false));
  EXPECT_NO_THROW(cache.flush());
  char* reread = static_cast<char*>(cache.pin(f, 0, false));
  EXPECT_EQ(reread[0], 42) << "dirty data survived the failed eviction";
}

TEST(FaultPageCache, ReadFaultInvalidatesFrameAndStaysUsable) {
  PageCache cache(2 * kPage, kPage, {}, install_only());
  const int f = cache.register_file(16);
  FaultInjector* inj = cache.fault_injector(f);
  ASSERT_NE(inj, nullptr);
  inj->set_hard_fault(3, /*reads=*/true, /*writes=*/false);
  EXPECT_THROW(cache.pin(f, 3, false), IoError);
  EXPECT_GE(cache.stats().io_hard_failures, 1u);
  // The failed frame was released: the cache still works end to end.
  inj->clear_hard_faults();
  char* p = static_cast<char*>(cache.pin(f, 3, true));
  p[0] = 9;
  cache.pin(f, 4, false);
  cache.pin(f, 5, false);  // evict page 3 (write-back now succeeds)
  EXPECT_EQ(static_cast<char*>(cache.pin(f, 3, false))[0], 9);
}

TEST(FaultPageCache, CorruptPagePropagatesAsTypedError) {
  PageCache cache(4 * kPage, kPage, {}, install_only());
  const int f = cache.register_file(16);
  FaultInjector* inj = cache.fault_injector(f);
  char* p = static_cast<char*>(cache.pin(f, 0, true));
  std::memset(p, 1, kPage);
  cache.flush();
  cache.pin(f, 1, false);
  cache.pin(f, 2, false);
  cache.pin(f, 3, false);
  cache.pin(f, 4, false);  // page 0 evicted (clean after flush)
  inj->corrupt_stored_page(0, 1234);
  EXPECT_THROW(cache.pin(f, 0, false), CorruptPageError);
  EXPECT_GE(cache.stats().crc_failures, 1u);
}

TEST(FaultPageCache, WorkerDegradesToSyncAfterRepeatedFailures) {
  RobustOptions r;
  r.faults.p_read_error = 1.0;
  r.faults.error_burst = 1 << 20;  // every read fails, transient-typed
  r.retry.max_attempts = 2;
  r.retry.backoff_us = 0;
  PageCache cache(8 * kPage, kPage, {}, r);
  const int f = cache.register_file(64);
  cache.enable_async_io();
  EXPECT_FALSE(cache.async_degraded());
  // Feed the worker failing prefetches until it gives up.
  for (int round = 0; round < 200 && !cache.async_degraded(); ++round) {
    for (std::uint64_t p = 0; p < 16; ++p) {
      cache.prefetch(f, (static_cast<std::uint64_t>(round) * 16 + p) % 64);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(cache.async_degraded());
  const PageCacheStats s = cache.stats();
  EXPECT_GE(s.prefetch_errors, 8u);  // kWorkerDegradeThreshold
  EXPECT_EQ(s.async_degraded, 1u);
  // Degraded: later hints are dropped, not queued (queue never wedges).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // drain
  cache.prefetch(f, 63);
  EXPECT_EQ(cache.prefetch_queue_depth(), 0u);
  cache.disable_async_io();
  // Re-enabling clears the degradation (fresh start).
  cache.enable_async_io();
  EXPECT_FALSE(cache.async_degraded());
  cache.disable_async_io();
}

// ---- End-to-end out-of-core algorithms under injected faults ----

Matrix<double> fw_init(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 9.0);
    m(i, i) = 0;
  }
  return m;
}

Matrix<double> lu_init(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

bool bit_identical(const Matrix<double>& a, const Matrix<double>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols()) *
                         sizeof(double)) == 0;
}

// Transient-fault posture used by the end-to-end legs: every fault mode
// on at rate >= 1e-3 (the acceptance bar), retry budget deep enough that
// an operation failing outright is out of reach for any seed.
RobustOptions transient_faults() {
  RobustOptions r;
  r.faults.seed = env_seed();
  r.faults.p_read_error = 0.02;
  r.faults.p_write_error = 0.02;
  r.faults.p_bitflip_read = 0.02;
  r.faults.p_torn_write = 0.01;
  r.retry.max_attempts = 10;
  r.retry.backoff_us = 0;
  return r;
}

TEST(FaultOoc, FloydWarshallBitIdenticalUnderTransientFaults) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  const Matrix<double> init = fw_init(n, 31);

  PageCache clean(8 * B, B);
  OocTiledMatrix<double> m0(clean, n, n, bs);
  m0.load(init);
  ooc_igep_floyd_warshall(m0);
  const Matrix<double> ref = m0.to_matrix();

  for (bool async : {false, true}) {
    PageCache cache(8 * B, B, {}, transient_faults());
    OocTiledMatrix<double> m(cache, n, n, bs);
    m.load(init);
    if (async) cache.enable_async_io();
    SeqInvoker inv;
    ooc_igep_floyd_warshall(m, inv, {.prefetch = async});
    if (async) cache.disable_async_io();
    EXPECT_TRUE(bit_identical(ref, m.to_matrix())) << "async=" << async;
    const PageCacheStats s = cache.stats();
    EXPECT_GT(s.io_retries + s.crc_failures, 0u)
        << "faults must actually have fired (async=" << async << ")";
    EXPECT_EQ(s.io_hard_failures, 0u);
  }
}

TEST(FaultOoc, LuBitIdenticalUnderTransientFaults) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  const Matrix<double> init = lu_init(n, 32);

  PageCache clean(8 * B, B);
  OocTiledMatrix<double> m0(clean, n, n, bs);
  m0.load(init);
  ooc_igep_lu(m0);
  const Matrix<double> ref = m0.to_matrix();

  for (bool async : {false, true}) {
    PageCache cache(8 * B, B, {}, transient_faults());
    OocTiledMatrix<double> m(cache, n, n, bs);
    m.load(init);
    if (async) cache.enable_async_io();
    SeqInvoker inv;
    ooc_igep_lu(m, inv, {.prefetch = async});
    if (async) cache.disable_async_io();
    EXPECT_TRUE(bit_identical(ref, m.to_matrix())) << "async=" << async;
    EXPECT_GT(cache.stats().io_retries + cache.stats().crc_failures, 0u);
  }
}

TEST(FaultOoc, MatmulBitIdenticalUnderTransientFaults) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  const Matrix<double> am = lu_init(n, 33), bm = lu_init(n, 34);
  const Matrix<double> zero(n, n, 0.0);

  PageCache clean(16 * B, B);
  OocTiledMatrix<double> c0(clean, n, n, bs), a0(clean, n, n, bs),
      b0(clean, n, n, bs);
  a0.load(am);
  b0.load(bm);
  c0.load(zero);
  ooc_igep_matmul(c0, a0, b0);
  const Matrix<double> ref = c0.to_matrix();

  for (bool async : {false, true}) {
    PageCache cache(16 * B, B, {}, transient_faults());
    OocTiledMatrix<double> c(cache, n, n, bs), a(cache, n, n, bs),
        b(cache, n, n, bs);
    a.load(am);
    b.load(bm);
    c.load(zero);
    if (async) cache.enable_async_io();
    SeqInvoker inv;
    ooc_igep_matmul(c, a, b, inv, {.prefetch = async});
    if (async) cache.disable_async_io();
    EXPECT_TRUE(bit_identical(ref, c.to_matrix())) << "async=" << async;
    EXPECT_GT(cache.stats().io_retries + cache.stats().crc_failures, 0u);
  }
}

TEST(FaultOoc, ParallelLuHardFaultPropagatesWithoutHang) {
  const index_t n = 64, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  PageCache cache(48 * B, B, {}, install_only());
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(lu_init(n, 35));
  FaultInjector* inj = cache.fault_injector(0);
  ASSERT_NE(inj, nullptr);
  // A page in the middle of the matrix becomes unreadable: the failing
  // leaf's IoError must surface from wait() — captured by WsTaskGroup —
  // with no deadlock and no leaked pins.
  inj->set_hard_fault(7, /*reads=*/true, /*writes=*/true);
  {
    WorkStealingPool pool(8);
    WsParInvoker inv{&pool};
    EXPECT_THROW(ooc_igep_lu(m, inv), IoError);
  }
  // All pins were released and no frame leaked io_busy: the cache is
  // fully usable afterwards.
  inj->clear_hard_faults();
  EXPECT_NO_THROW(cache.pin(0, 7, false));
  EXPECT_NO_THROW(cache.flush());
}

// ---- Numeric breakdown guards ----

TEST(FaultNumeric, GuardedLuThrowsOnSingularLeadingMinor) {
  Matrix<double> a = lu_init(16, 40);
  a(0, 0) = 0.0;  // singular leading 1x1 minor: pivot 0 breaks down
  for (index_t j = 1; j < 16; ++j) a(0, j) = 1.0;  // keep the row nonzero
  BreakdownGuard guard;
  guard.policy = BreakdownPolicy::Throw;
  EXPECT_THROW(
      { apps::lu_decompose_guarded(a, guard); }, NumericBreakdownError);
}

TEST(FaultNumeric, BoostFactorsShiftedSystem) {
  Matrix<double> a = lu_init(16, 41);
  a(0, 0) = 0.0;
  BreakdownGuard guard;
  guard.policy = BreakdownPolicy::Boost;
  guard.residual_samples = 4;
  Matrix<double> lu = a;
  const NumericReport rep = apps::lu_decompose_guarded(lu, guard);
  EXPECT_GE(rep.breakdowns, 1u);
  EXPECT_GE(rep.boosts, 1u);
  EXPECT_GT(rep.diagonal_shift, 0.0);
  EXPECT_TRUE(lu_factors_finite(lu));
  EXPECT_EQ(rep.residual_failures, 0u)
      << "factors must reproduce the shifted matrix, residual="
      << rep.residual_max;
  EXPECT_TRUE(rep.ok());
}

TEST(FaultNumeric, ReportCountsAndReturnsBrokenFactors) {
  Matrix<double> a = lu_init(16, 42);
  a(0, 0) = 0.0;
  BreakdownGuard guard;
  guard.policy = BreakdownPolicy::Report;
  NumericReport rep;
  EXPECT_NO_THROW({ rep = apps::lu_decompose_guarded(a, guard); });
  EXPECT_GE(rep.breakdowns, 1u);
  EXPECT_EQ(rep.boosts, 0u);
  EXPECT_FALSE(rep.ok());
}

TEST(FaultNumeric, GuardedSolveMatchesPlainOnHealthySystems) {
  const index_t n = 24;
  Matrix<double> a = lu_init(n, 43);
  std::vector<double> b(static_cast<std::size_t>(n));
  SplitMix64 g(44);
  for (double& v : b) v = g.uniform(-1, 1);
  const std::vector<double> plain = apps::solve(a, b);
  BreakdownGuard guard;
  guard.residual_samples = 4;
  NumericReport rep;
  const std::vector<double> guarded =
      apps::solve_guarded(a, b, guard, &rep);
  ASSERT_EQ(plain.size(), guarded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], guarded[i]) << "guarding must not change the math";
  }
  EXPECT_EQ(rep.breakdowns, 0u);
  EXPECT_GT(rep.growth_factor, 0.0);
  EXPECT_EQ(rep.residual_failures, 0u);
  EXPECT_LE(rep.residual_max, guard.residual_limit);
  EXPECT_TRUE(rep.ok());
}

TEST(FaultNumeric, OocGuardedLuThrowsAtTheOffendingPivot) {
  const index_t n = 32, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  Matrix<double> init = lu_init(n, 45);
  init(0, 0) = 0.0;
  PageCache cache(8 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  const double amax = guard_max_abs(init);
  const PivotGuard guard(BreakdownPolicy::Throw, default_tiny_pivot(n, amax),
                         amax);
  SeqInvoker inv;
  try {
    ooc_igep_lu(m, inv, {.lu_guard = &guard});
    FAIL() << "expected NumericBreakdownError";
  } catch (const NumericBreakdownError& e) {
    EXPECT_EQ(e.pivot_index(), 0);
    EXPECT_EQ(e.pivot_value(), 0.0);
  }
  EXPECT_EQ(guard.breakdowns(), 1u);
}

TEST(FaultNumeric, OocGuardedLuBoostsPivotInPlace) {
  const index_t n = 32, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  Matrix<double> init = lu_init(n, 46);
  init(0, 0) = 0.0;
  PageCache cache(8 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  const double amax = guard_max_abs(init);
  const double boost = 0.5 * amax;
  const PivotGuard guard(BreakdownPolicy::Boost, default_tiny_pivot(n, amax),
                         boost);
  SeqInvoker inv;
  EXPECT_NO_THROW(ooc_igep_lu(m, inv, {.lu_guard = &guard}));
  EXPECT_EQ(guard.breakdowns(), 1u);
  EXPECT_EQ(guard.boosts(), 1u);
  const Matrix<double> lu = m.to_matrix();
  // The boosted pivot persisted through the write-pinned diagonal tile.
  EXPECT_EQ(lu(0, 0), boost);
  EXPECT_TRUE(lu_factors_finite(lu));
}

TEST(FaultNumeric, FreivaldsAcceptsCorrectAndRejectsWrongProducts) {
  const index_t n = 48;
  const Matrix<double> a = lu_init(n, 47), b = lu_init(n, 48);
  Matrix<double> c(n, n, 0.0);
  apps::multiply_add(c, a, b, apps::Engine::IGep);
  EXPECT_TRUE(apps::freivalds_check(c, a, b));
  const Matrix<double> before(n, n, 0.0);
  EXPECT_TRUE(apps::freivalds_check(c, before, a, b));
  // A single wrong entry must be caught (each probe misses it with
  // probability 1/2; 8 probes leave 2^-8).
  Matrix<double> wrong = c;
  wrong(n / 2, n / 3) += 1.0;
  EXPECT_FALSE(apps::freivalds_check(wrong, a, b));
  EXPECT_FALSE(apps::freivalds_check(wrong, before, a, b));
}

TEST(FaultNumeric, LuResidualSampleSeparatesGoodFromCorrupt) {
  const index_t n = 32;
  const Matrix<double> a = lu_init(n, 49);
  Matrix<double> lu = a;
  apps::lu_decompose(lu, apps::Engine::IGep);
  EXPECT_LT(lu_residual_sample(a, lu, 8), 1e-10);
  Matrix<double> broken = lu;
  broken(3, 4) += 1.0;
  EXPECT_GT(lu_residual_sample(a, broken, 32), 1e-4);
}

}  // namespace
}  // namespace gep
