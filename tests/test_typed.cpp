// The typed A/B/C/D engine must compute exactly what the generic I-GEP
// recursion (and hence G) computes, for every base size and both layouts.
#include <gtest/gtest.h>

#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/typed.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

Matrix<double> random_dist(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 50.0);
    m(i, i) = 0.0;
  }
  return m;
}

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

struct Instance {
  index_t n;
  index_t base;
};

class TypedEngine : public ::testing::TestWithParam<Instance> {};

TEST_P(TypedEngine, FloydWarshallMatchesG) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dist(n, 1 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, MinPlusF{}, FullSet{n});
  RowMajorStore<double> st{got.data(), n, std::min(base, n)};
  SeqInvoker inv;
  igep_floyd_warshall(inv, st, n, {base});
  EXPECT_TRUE(approx_equal(ref, got, 1e-12)) << "n=" << n << " base=" << base;
}

TEST_P(TypedEngine, GaussianMatchesG) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dd(n, 2 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, GaussF{}, GaussianSet{n});
  RowMajorStore<double> st{got.data(), n, std::min(base, n)};
  SeqInvoker inv;
  igep_gaussian(inv, st, n, {base});
  EXPECT_LT(max_abs_diff(ref, got), 1e-9) << "n=" << n << " base=" << base;
}

TEST_P(TypedEngine, LUMatchesG) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dd(n, 3 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, LUIndexedF{}, LUSet{n});
  RowMajorStore<double> st{got.data(), n, std::min(base, n)};
  SeqInvoker inv;
  igep_lu(inv, st, n, {base});
  EXPECT_LT(max_abs_diff(ref, got), 1e-9) << "n=" << n << " base=" << base;
}

TEST_P(TypedEngine, MatMulMatchesNaive) {
  auto [n, base] = GetParam();
  SplitMix64 g(4 + static_cast<unsigned>(n));
  Matrix<double> a(n, n), b(n, n), c(n, n, 0.0), ref(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = g.uniform(-1, 1);
      b(i, j) = g.uniform(-1, 1);
    }
  }
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < n; ++k) {
      const double aik = a(i, k);
      for (index_t j = 0; j < n; ++j) ref(i, j) += aik * b(k, j);
    }
  RowMajorStore<double> cst{c.data(), n, std::min(base, n)};
  RowMajorStore<const double> ast{a.data(), n, std::min(base, n)};
  RowMajorStore<const double> bst{b.data(), n, std::min(base, n)};
  SeqInvoker inv;
  igep_matmul(inv, cst, ast, bst, n, {base});
  EXPECT_LT(max_abs_diff(ref, c), 1e-10) << "n=" << n << " base=" << base;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, TypedEngine,
    ::testing::Values(Instance{1, 1}, Instance{2, 1}, Instance{4, 2},
                      Instance{8, 1}, Instance{8, 8}, Instance{16, 2},
                      Instance{16, 16}, Instance{32, 4}, Instance{64, 8},
                      Instance{64, 64}, Instance{128, 32}));

TEST(TypedEngineZ, FloydWarshallOnZLayoutMatchesRowMajor) {
  const index_t n = 64;
  for (index_t bs : {4, 8, 16}) {
    Matrix<double> init = random_dist(n, 9);
    Matrix<double> rm = init;
    RowMajorStore<double> st{rm.data(), n, bs};
    SeqInvoker inv;
    igep_floyd_warshall(inv, st, n, {bs});

    Matrix<double> zm = init;
    ZBlocked<double> z(n, bs);
    z.load(zm);
    ZStore<double> zst{&z};
    igep_floyd_warshall(inv, zst, n, {bs});
    z.store(zm);
    EXPECT_TRUE(approx_equal(rm, zm, 0.0)) << "bs=" << bs;
  }
}

TEST(TypedEngineZ, LUOnZLayoutMatchesRowMajor) {
  const index_t n = 64;
  const index_t bs = 8;
  Matrix<double> init = random_dd(n, 10);
  Matrix<double> rm = init;
  RowMajorStore<double> st{rm.data(), n, bs};
  SeqInvoker inv;
  igep_lu(inv, st, n, {bs});

  Matrix<double> zm = init;
  ZBlocked<double> z(n, bs);
  z.load(zm);
  ZStore<double> zst{&z};
  igep_lu(inv, zst, n, {bs});
  z.store(zm);
  EXPECT_TRUE(approx_equal(rm, zm, 0.0));
}

// The typed engine and the generic recursive engine must agree exactly
// (identical update order at equal base sizes => bit-identical floats).
TEST(TypedVsGeneric, BitIdenticalAtMatchingBaseSize) {
  const index_t n = 32, bs = 4;
  Matrix<double> init = random_dist(n, 21);
  Matrix<double> a = init, b = init;
  run_igep(a, MinPlusF{}, FullSet{n}, {bs});
  RowMajorStore<double> st{b.data(), n, bs};
  SeqInvoker inv;
  igep_floyd_warshall(inv, st, n, {bs});
  EXPECT_TRUE(approx_equal(a, b, 0.0));
}

}  // namespace
}  // namespace gep
