#include <gtest/gtest.h>

#include "matrix/matrix.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(Matrix, FillAndIndex) {
  Matrix<double> m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 1.5);
  m(2, 3) = -1;
  EXPECT_EQ(m(2, 3), -1);
  EXPECT_EQ(m.data()[2 * 4 + 3], -1);
}

TEST(Matrix, CopyIsDeep) {
  Matrix<double> a(2, 2, 0.0);
  Matrix<double> b(a);
  b(0, 0) = 9;
  EXPECT_EQ(a(0, 0), 0.0);
  a = b;
  EXPECT_EQ(a(0, 0), 9.0);
  a(1, 1) = 5;
  EXPECT_EQ(b(1, 1), 0.0);
}

TEST(Matrix, MoveTransfersStorage) {
  Matrix<double> a(4, 4, 2.0);
  double* p = a.data();
  Matrix<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b(3, 3), 2.0);
}

TEST(MatrixView, QuadrantsPartitionSquare) {
  Matrix<int> m(4, 4);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) m(i, j) = static_cast<int>(10 * i + j);
  auto v = m.view();
  EXPECT_EQ(v.q11()(0, 0), 0);
  EXPECT_EQ(v.q12()(0, 0), 2);
  EXPECT_EQ(v.q21()(0, 0), 20);
  EXPECT_EQ(v.q22()(0, 0), 22);
  EXPECT_EQ(v.q22()(1, 1), 33);
  EXPECT_EQ(v.q12().stride(), 4);
}

TEST(MatrixView, NestedBlocksAddressCorrectly) {
  Matrix<int> m(8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) m(i, j) = static_cast<int>(i * 8 + j);
  auto b = m.view().block(2, 3, 4, 4).block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 3 * 8 + 4);
  EXPECT_EQ(b(1, 1), 4 * 8 + 5);
  b(0, 0) = -1;
  EXPECT_EQ(m(3, 4), -1);
}

TEST(MatrixHelpers, Pow2Helpers) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(MatrixHelpers, PadUnpadRoundTrip) {
  SplitMix64 g(3);
  Matrix<double> m(5, 7);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 7; ++j) m(i, j) = g.next_double();
  Matrix<double> p = pad_to_pow2(m, -9.0);
  EXPECT_EQ(p.rows(), 8);
  EXPECT_EQ(p.cols(), 8);
  EXPECT_EQ(p(7, 7), -9.0);
  EXPECT_EQ(p(0, 6), m(0, 6));
  Matrix<double> u = unpad(p, 5, 7);
  EXPECT_TRUE(approx_equal(u, m));
}

TEST(MatrixHelpers, ApproxEqualAndMaxDiff) {
  Matrix<double> a(2, 2, 1.0), b(2, 2, 1.0);
  EXPECT_TRUE(approx_equal(a, b));
  b(1, 0) = 1.25;
  EXPECT_FALSE(approx_equal(a, b));
  EXPECT_TRUE(approx_equal(a, b, 0.25));
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.25);
}

TEST(MatrixHelpers, ApproxEqualShapeMismatch) {
  Matrix<double> a(2, 2, 0.0), b(2, 3, 0.0);
  EXPECT_FALSE(approx_equal(a, b));
}

}  // namespace
}  // namespace gep
