// Concurrency tests for the thread-safe page cache and the parallel
// out-of-core typed engine. These are the tests the CI sanitizer job
// (ASan + TSan) runs — keep them free of benign races: the cache
// synchronizes frame METADATA, while page CONTENTS are the caller's to
// divide (here: thread-owned pages for writes, shared pages read-only).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(PageCacheConcurrent, PinAcquireEvictStress) {
  const std::uint64_t B = 256;
  PageCache cache(24 * B, B);  // far fewer frames than hot pages
  const int kThreads = 8;
  const std::uint64_t kOwnPages = 8, kSharedPages = 64;
  int f_own = cache.register_file(kThreads * kOwnPages);
  int f_shared = cache.register_file(kSharedPages);
  // Pre-fill the shared read-only file before the threads start.
  for (std::uint64_t p = 0; p < kSharedPages; ++p) {
    auto pin = cache.acquire(f_shared, p, /*for_write=*/true);
    std::memset(pin.data(), static_cast<int>(p & 0x7f), B);
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(0xabcdef ^ static_cast<std::uint64_t>(t));
      for (int iter = 0; iter < 400; ++iter) {
        // Write a thread-owned page (no other thread touches it).
        const std::uint64_t own =
            static_cast<std::uint64_t>(t) * kOwnPages + rng.below(kOwnPages);
        {
          auto pin = cache.acquire(f_own, own, /*for_write=*/true);
          std::memset(pin.data(), t + 1, B);
        }
        // Read a shared page; contents must match the pre-filled fill.
        const std::uint64_t sp = rng.below(kSharedPages);
        {
          auto pin = cache.acquire(f_shared, sp, /*for_write=*/false);
          const char* d = static_cast<const char*>(pin.data());
          if (d[0] != static_cast<char>(sp & 0x7f) ||
              d[B - 1] != static_cast<char>(sp & 0x7f)) {
            failures.fetch_add(1);
          }
        }
        // Hold two pins at once across an eviction-pressure access.
        auto a = cache.acquire(f_shared, rng.below(kSharedPages), false);
        auto b = cache.acquire(f_own, own, false);
        if (static_cast<const char*>(b.data())[0] != t + 1) {
          failures.fetch_add(1);
        }
        if (iter % 16 == 0) cache.prefetch(f_shared, rng.below(kSharedPages));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses(), s.pins);
  // Every thread-owned page must have survived its last write.
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t p = 0; p < kOwnPages; ++p) {
      auto pin =
          cache.acquire(f_own, static_cast<std::uint64_t>(t) * kOwnPages + p,
                        /*for_write=*/false);
      const char c = static_cast<const char*>(pin.data())[0];
      EXPECT_TRUE(c == 0 || c == t + 1) << "page " << p << " of thread " << t;
    }
  }
}

TEST(PageCacheConcurrent, StressWithAsyncWorker) {
  const std::uint64_t B = 256;
  PageCache cache(16 * B, B);
  cache.enable_async_io();
  int f = cache.register_file(128);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(0x1234 ^ static_cast<std::uint64_t>(t));
      for (int iter = 0; iter < 300; ++iter) {
        const std::uint64_t p = rng.below(128);
        cache.prefetch(f, rng.below(128));
        auto pin = cache.acquire(f, p, /*for_write=*/false);
        (void)pin;
      }
    });
  }
  for (auto& th : threads) th.join();
  cache.disable_async_io();
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.pins, 4u * 300u);
  EXPECT_EQ(s.hits + s.misses(), s.pins);
}

TEST(PageCachePrefetch, PrefetchedPageCountsAsHit) {
  PageCache cache(16 * 4096, 4096);
  int f = cache.register_file(64);
  cache.enable_async_io();
  cache.prefetch(f, 7);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (cache.stats().prefetch_completed < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(cache.stats().prefetch_completed, 1u) << "worker never ran";
  { auto pin = cache.acquire(f, 7, false); }
  cache.disable_async_io();
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.pins, 1u);
  EXPECT_EQ(s.hits, 1u);  // the fault happened off the critical path
  EXPECT_EQ(s.prefetch_hits, 1u);
  EXPECT_EQ(s.page_ins, 1u);
  EXPECT_DOUBLE_EQ(s.prefetch_hit_rate(), 1.0);
}

TEST(PageCachePrefetch, WorkerWritesBackDirtyColdFrames) {
  PageCache cache(8 * 4096, 4096);
  int f = cache.register_file(64);
  {  // dirty one page, then make it the LRU tail
    auto pin = cache.acquire(f, 0, /*for_write=*/true);
    std::memset(pin.data(), 1, 4096);
  }
  for (std::uint64_t p = 1; p < 5; ++p) cache.pin(f, p, false);
  cache.enable_async_io();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (cache.stats().writebacks_async < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cache.disable_async_io();
  EXPECT_GE(cache.stats().writebacks_async, 1u);
  // The write-behind must not have corrupted the page.
  auto pin = cache.acquire(f, 0, false);
  EXPECT_EQ(static_cast<const char*>(pin.data())[0], 1);
}

// The invoke() barriers separate stages whose X tiles are disjoint, so
// the parallel engine must produce bit-identical results — with and
// without prefetch racing the foreground for frames.
TEST(OocTypedParallel, LuMatchesSequentialBitForBit) {
  const index_t n = 64, bs = 8;
  SplitMix64 g(77);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    init(i, i) += static_cast<double>(n);
  }
  const std::uint64_t B = bs * bs * 8;
  PageCache c_seq(16 * B, B);
  OocTiledMatrix<double> m_seq(c_seq, n, n, bs);
  m_seq.load(init);
  ooc_igep_lu(m_seq);
  const Matrix<double> ref = m_seq.to_matrix();

  for (bool prefetch : {false, true}) {
    PageCache cache(48 * B, B);  // 4 pins x 8 workers + headroom
    OocTiledMatrix<double> m(cache, n, n, bs);
    m.load(init);
    if (prefetch) cache.enable_async_io();
    WorkStealingPool pool(8);
    WsParInvoker inv{&pool};
    ooc_igep_lu(m, inv, {.prefetch = prefetch});
    if (prefetch) cache.disable_async_io();
    const Matrix<double> got = m.to_matrix();
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        ASSERT_EQ(got(i, j), ref(i, j))
            << "prefetch=" << prefetch << " at (" << i << "," << j << ")";
  }
}

TEST(OocTypedParallel, FloydWarshallParallelPrefetchMatches) {
  const index_t n = 128, bs = 16;
  SplitMix64 g(91);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 100.0);
    init(i, i) = 0.0;
  }
  const std::uint64_t B = bs * bs * 8;
  PageCache c_seq(16 * B, B);
  OocTiledMatrix<double> m_seq(c_seq, n, n, bs);
  m_seq.load(init);
  ooc_igep_floyd_warshall(m_seq);
  const Matrix<double> ref = m_seq.to_matrix();

  PageCache cache(32 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  cache.enable_async_io();
  WorkStealingPool pool(4);
  WsParInvoker inv{&pool};
  ooc_igep_floyd_warshall(m, inv, {.prefetch = true});
  cache.disable_async_io();
  const Matrix<double> got = m.to_matrix();
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) ASSERT_EQ(got(i, j), ref(i, j));
}

}  // namespace
}  // namespace gep
