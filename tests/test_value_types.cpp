// Value-type generality: the engines are templates over the element
// type; exercise float, int64 min-plus (exact arithmetic — engines must
// agree bit-for-bit), and uint8 semirings across the whole stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/typed.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

// --- int64 min-plus: exact arithmetic, all engines must agree exactly ----

constexpr std::int64_t kIntInf = std::numeric_limits<std::int64_t>::max() / 4;

Matrix<std::int64_t> random_int_graph(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<std::int64_t> m(n, n, kIntInf);
  for (index_t i = 0; i < n; ++i) {
    m(i, i) = 0;
    for (index_t j = 0; j < n; ++j) {
      if (i != j && g.chance(0.3)) {
        m(i, j) = static_cast<std::int64_t>(g.below(100)) + 1;
      }
    }
  }
  return m;
}

TEST(IntMinPlus, AllEnginesBitIdentical) {
  for (index_t n : {4, 16, 32}) {
    Matrix<std::int64_t> init = random_int_graph(n, 10 + static_cast<unsigned>(n));
    Matrix<std::int64_t> g = init, f = init, h = init, hc = init, t = init;
    run_gep(g, MinPlusF{}, FullSet{n});
    run_igep(f, MinPlusF{}, FullSet{n}, {4});
    run_cgep(h, MinPlusF{}, FullSet{n}, {4});
    run_cgep_compact(hc, MinPlusF{}, FullSet{n}, {4});
    RowMajorStore<std::int64_t> st{t.data(), n, std::min<index_t>(4, n)};
    SeqInvoker inv;
    igep_floyd_warshall(inv, st, n, {4});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        ASSERT_EQ(g(i, j), f(i, j)) << "igep n=" << n;
        ASSERT_EQ(g(i, j), h(i, j)) << "cgep n=" << n;
        ASSERT_EQ(g(i, j), hc(i, j)) << "compact n=" << n;
        ASSERT_EQ(g(i, j), t(i, j)) << "typed n=" << n;
      }
    }
  }
}

TEST(IntMinPlus, NoOverflowNearSentinel) {
  // Relaxations add two near-sentinel values; kIntInf/4 headroom keeps
  // the sum representable and still larger than any real distance.
  const index_t n = 8;
  Matrix<std::int64_t> m(n, n, kIntInf);
  for (index_t i = 0; i < n; ++i) m(i, i) = 0;
  m(0, 1) = 3;
  run_igep(m, MinPlusF{}, FullSet{n}, {2});
  EXPECT_EQ(m(0, 1), 3);
  EXPECT_GE(m(1, 0), kIntInf);  // untouched sentinel
}

// --- float engines ---------------------------------------------------------

TEST(FloatEngines, FloydWarshallMatchesDoubleWithinTolerance) {
  const index_t n = 32;
  SplitMix64 g(3);
  Matrix<float> mf(n, n);
  Matrix<double> md(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double v = (i == j) ? 0.0 : g.uniform(1.0, 50.0);
      mf(i, j) = static_cast<float>(v);
      md(i, j) = static_cast<double>(mf(i, j));  // same starting values
    }
  }
  run_igep(mf, MinPlusF{}, FullSet{n}, {4});
  run_igep(md, MinPlusF{}, FullSet{n}, {4});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(static_cast<double>(mf(i, j)), md(i, j), 1e-3);
    }
  }
}

TEST(FloatEngines, TypedLUCloseToDouble) {
  const index_t n = 32;
  SplitMix64 g(4);
  Matrix<float> af(n, n);
  Matrix<double> ad(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      float v = static_cast<float>(g.uniform(-1.0, 1.0));
      if (i == j) v += static_cast<float>(n) + 2.0f;
      af(i, j) = v;
      ad(i, j) = static_cast<double>(v);
    }
  }
  RowMajorStore<float> stf{af.data(), n, 8};
  RowMajorStore<double> std_{ad.data(), n, 8};
  SeqInvoker inv;
  igep_lu(inv, stf, n, {8});
  igep_lu(inv, std_, n, {8});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(static_cast<double>(af(i, j)), ad(i, j), 2e-4)
          << i << "," << j;
    }
  }
}

TEST(FloatEngines, ZLayoutRoundTripFloat) {
  const index_t n = 16, bs = 4;
  SplitMix64 g(5);
  Matrix<float> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = static_cast<float>(g.next_double());
  ZBlocked<float> z(n, bs);
  z.load(m);
  Matrix<float> back(n, n, 0.0f);
  z.store(back);
  EXPECT_TRUE(approx_equal(m, back));
}

// --- uint8 or-and semiring through C-GEP -----------------------------------

TEST(ByteSemiring, CGepMatchesGOnClosure) {
  const index_t n = 16;
  SplitMix64 g(6);
  Matrix<std::uint8_t> init(n, n, std::uint8_t{0});
  for (index_t i = 0; i < n; ++i) {
    init(i, i) = 1;
    for (index_t j = 0; j < n; ++j)
      if (g.chance(0.15)) init(i, j) = 1;
  }
  Matrix<std::uint8_t> a = init, b = init, c = init;
  run_gep(a, OrAndF{}, FullSet{n});
  run_cgep(b, OrAndF{}, FullSet{n}, {2});
  run_cgep_compact(c, OrAndF{}, FullSet{n}, {2});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(a(i, j), b(i, j));
      ASSERT_EQ(a(i, j), c(i, j));
    }
  }
}

}  // namespace
}  // namespace gep
