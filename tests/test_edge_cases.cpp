// Edge cases and failure injection across the stack: degenerate sizes,
// starved caches, singular pivots, scheduler stress, and API guards.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "apps/apps.hpp"
#include "apps/gap_alignment.hpp"
#include "apps/simple_dp.hpp"
#include "blas/blas.hpp"
#include "cachesim/ideal_cache.hpp"
#include "extmem/ooc_matrix.hpp"
#include "gep/cgep.hpp"
#include "layout/zblocked.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "parallel/dag_sim.hpp"
#include "parallel/thread_pool.hpp"
#include "util/peak.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace gep {
namespace {

using apps::Engine;

// --- Degenerate sizes ------------------------------------------------------

TEST(EdgeSizes, OneByOneEverything) {
  Matrix<double> m(1, 1, 3.0);
  apps::floyd_warshall(m, Engine::IGep);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);  // min(x, x+x) with x=3? no: d(0,0)=3 stays
  Matrix<double> a(1, 1, 5.0);
  apps::lu_decompose(a, Engine::CGep);
  EXPECT_DOUBLE_EQ(a(0, 0), 5.0);  // no updates in LUSet for n=1
  Matrix<double> c(1, 1, 0.0), x(1, 1, 2.0), y(1, 1, 4.0);
  apps::multiply_add(c, x, y, Engine::IGep);
  EXPECT_DOUBLE_EQ(c(0, 0), 8.0);
}

TEST(EdgeSizes, TwoByTwoAllEnginesLU) {
  Matrix<double> a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 6;
  a(1, 1) = 7;
  // LU: l10 = 6/4 = 1.5; u11 = 7 - 1.5*2 = 4.
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::CGep,
                   Engine::CGepCompact, Engine::Blocked}) {
    Matrix<double> m = a;
    apps::lu_decompose(m, e);
    EXPECT_DOUBLE_EQ(m(1, 0), 1.5) << apps::engine_name(e);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0) << apps::engine_name(e);
  }
}

TEST(EdgeSizes, GapAlignmentTinyShapes) {
  auto s = [](index_t, index_t) { return 1.0; };
  auto wg = [](index_t q, index_t j) { return static_cast<double>(j - q); };
  // 1 x 1: only G(0,0) = 0.
  Matrix<double> g1(1, 1);
  apps::gap_alignment_recursive(g1, s, wg);
  EXPECT_DOUBLE_EQ(g1(0, 0), 0.0);
  // 1 x k: pure row gaps.
  Matrix<double> g2(1, 6), r2(1, 6);
  apps::gap_alignment_recursive(g2, s, wg, {2});
  apps::gap_alignment_iterative(r2, s, wg);
  for (index_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(g2(0, j), r2(0, j));
  // k x 1: pure column gaps.
  Matrix<double> g3(7, 1), r3(7, 1);
  apps::gap_alignment_recursive(g3, s, wg, {2});
  apps::gap_alignment_iterative(r3, s, wg);
  for (index_t i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(g3(i, 0), r3(i, 0));
}

TEST(EdgeSizes, SimpleDpDegenerate) {
  auto w = [](index_t, index_t) { return 1.0; };
  Matrix<double> d2(2, 2, 0.0);
  d2(0, 1) = 7;
  apps::simple_dp_recursive(d2, w);
  EXPECT_DOUBLE_EQ(d2(0, 1), 7.0);  // leaves untouched
  Matrix<double> d3(3, 3, 0.0);
  d3(0, 1) = 1;
  d3(1, 2) = 2;
  apps::simple_dp_recursive(d3, w, {2});
  EXPECT_DOUBLE_EQ(d3(0, 2), 4.0);  // 1 + (1+2)
}

// --- Numerical failure: singular pivots -----------------------------------

TEST(Singular, LUWithZeroPivotProducesNonFinite) {
  // No pivoting: a zero pivot must surface as inf/nan, never crash.
  Matrix<double> a(4, 4, 1.0);  // rank-1: second pivot is exactly 0
  apps::lu_decompose(a, Engine::IGep, {2, 1});
  bool nonfinite = false;
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) nonfinite |= !std::isfinite(a(i, j));
  EXPECT_TRUE(nonfinite);
}

// --- Starved caches ---------------------------------------------------------

TEST(Starved, PageCacheSingleFrameStillCorrect) {
  PageCache cache(64, 64);  // one 64-byte frame = 8 doubles
  OocMatrix<double> m(cache, 8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) m.set(i, j, static_cast<double>(i * 8 + j));
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j)
      ASSERT_EQ(m.get(i, j), static_cast<double>(i * 8 + j));
  EXPECT_GT(cache.stats().page_outs, 0u);
}

TEST(Starved, OocEngineOnSingleFrameMatchesInCore) {
  const index_t n = 16;
  SplitMix64 g(2);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 5.0);
    init(i, i) = 0;
  }
  Matrix<double> ref = init;
  run_igep(ref, MinPlusF{}, FullSet{n}, {4});
  PageCache cache(128, 128);  // single 16-double frame
  OocMatrix<double> ooc(cache, n, n);
  ooc.load(init);
  run_igep(ooc, MinPlusF{}, FullSet{n}, {4});
  EXPECT_TRUE(approx_equal(ref, ooc.to_matrix(), 0.0));
}

TEST(Starved, PageLargerThanMatrix) {
  PageCache cache(1 << 16, 1 << 16);  // one page holds everything
  OocMatrix<double> m(cache, 10, 10);
  m.set(9, 9, 42.0);
  EXPECT_EQ(m.get(9, 9), 42.0);
  EXPECT_LE(cache.stats().page_ins, 1u);
}

TEST(Starved, IdealCacheMinimumCapacity) {
  IdealCache c(64, 64);  // exactly one block
  for (int r = 0; r < 3; ++r) {
    c.access(0, true);
    c.access(1024, false);
  }
  EXPECT_EQ(c.stats().misses, 6u);
  EXPECT_GE(c.stats().dirty_writebacks, 3u);
}

// --- Scheduler stress -------------------------------------------------------

TEST(PoolStress, DeepNestedRecursionManyTasks) {
  ThreadPool pool(8);
  std::atomic<long> count{0};
  // Fork a full binary tree of depth 12 (4095 internal groups).
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TaskGroup g(&pool);
    g.run([&, depth] { rec(depth - 1); });
    g.run([&, depth] { rec(depth - 1); });
    g.wait();
  };
  rec(12);
  EXPECT_EQ(count.load(), 4096);
}

TEST(PoolStress, ManyGroupsSequentially) {
  ThreadPool pool(4);
  long total = 0;
  std::atomic<long> hits{0};
  for (int round = 0; round < 200; ++round) {
    TaskGroup g(&pool);
    for (int t = 0; t < 5; ++t) g.run([&] { hits.fetch_add(1); });
    g.wait();
    total += 5;
  }
  EXPECT_EQ(hits.load(), total);
}

TEST(DagSchedule, EveryLeafExactlyOnceWithValidProcs) {
  std::vector<LeafBox> boxes;
  auto dag = build_igep_dag(DagProblem::LU, 64, 8, &boxes);
  for (int p : {1, 3, 8}) {
    auto sched = dag_schedule(dag, p);
    ASSERT_EQ(sched.size(), boxes.size());
    std::vector<int> seen(boxes.size(), 0);
    double prev = -1;
    for (const auto& s : sched) {
      ASSERT_GE(s.leaf_id, 0);
      ASSERT_LT(static_cast<std::size_t>(s.leaf_id), boxes.size());
      ASSERT_GE(s.proc, 0);
      ASSERT_LT(s.proc, p);
      ASSERT_GE(s.start, prev);  // ordered by start time
      prev = s.start;
      seen[static_cast<std::size_t>(s.leaf_id)] += 1;
    }
    for (int c : seen) EXPECT_EQ(c, 1);
  }
}

// --- Misc robustness --------------------------------------------------------

TEST(Misc, ThreadPoolClampsThreadCount) {
  ThreadPool p0(0);
  EXPECT_EQ(p0.threads(), 1);
  ThreadPool pneg(-3);
  EXPECT_EQ(pneg.threads(), 1);
}

TEST(Misc, PeakProbePositiveAndCached) {
  double p1 = measured_peak_gflops(0.05);
  double p2 = measured_peak_gflops(0.05);
  EXPECT_GT(p1, 0.0);
  EXPECT_EQ(p1, p2);  // cached
}

TEST(Misc, TableCsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  std::string path = ::testing::TempDir() + "gep_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,x");
  EXPECT_EQ(l3, "2,y");
  std::remove(path.c_str());
}

TEST(Misc, PrngChanceExtremes) {
  SplitMix64 g(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.chance(0.0));
    EXPECT_TRUE(g.chance(1.0));
  }
}

TEST(Misc, ZBlockedSingleTile) {
  const index_t n = 8;
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = static_cast<double>(i - j);
  ZBlocked<double> z(n, n);  // bs == n: one tile, row-major inside
  z.load(m);
  EXPECT_EQ(z.tile(0, 0)[3 * n + 5], m(3, 5));
  Matrix<double> back(n, n, 0.0);
  z.store(back);
  EXPECT_TRUE(approx_equal(m, back));
}

TEST(Misc, BlasGemmZeroDims) {
  double x = 5;
  blas::dgemm(0, 0, 0, 1.0, &x, 1, &x, 1, &x, 1);  // must be a no-op
  EXPECT_EQ(x, 5);
  blas::dgemm(1, 1, 0, 1.0, &x, 1, &x, 1, &x, 1);
  EXPECT_EQ(x, 5);
}

TEST(Misc, FwInfinityPlumbing) {
  // Disconnected graph: distances stay at the sentinel, no overflow.
  const index_t n = 8;
  Matrix<double> d(n, n, apps::kInfDist);
  for (index_t i = 0; i < n; ++i) d(i, i) = 0;
  d(0, 1) = 1.0;  // only one edge
  apps::floyd_warshall(d, Engine::IGep, {2, 1});
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_GE(d(1, 0), apps::kInfDist / 2);
  EXPECT_GE(d(2, 5), apps::kInfDist / 2);
}

}  // namespace
}  // namespace gep
