// Tests for the performance-attribution layer added on top of the
// tracer: Profile aggregation (self/total time, folded stacks, thread
// balance), the JSON reader the bench tools are built on, the leaf
// sampler, and the median-of-k BenchReport plumbing the regression gate
// consumes. GEP_OBS=1 only where noted; the JsonValue reader is always
// compiled.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "gep/typed.hpp"
#include "matrix/matrix.hpp"
#include "obs/obs.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using obs::JsonValue;

// --- JsonValue reader (always compiled) -----------------------------------

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(JsonValue::parse(text, &v, &err)) << err;
  return v;
}

bool parse_fails(const std::string& text) {
  JsonValue v;
  std::string err;
  return !JsonValue::parse(text, &v, &err);
}

TEST(JsonRead, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_ok("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("  [1, 2]  ").size(), 2u);
}

TEST(JsonRead, NestedLookup) {
  const JsonValue v = parse_ok(
      R"({"a": {"b": [10, {"c": "deep"}]}, "n": 3.5})");
  EXPECT_EQ(v["a"]["b"][1]["c"].as_string(), "deep");
  EXPECT_EQ(v["a"]["b"][0].as_int(), 10);
  EXPECT_DOUBLE_EQ(v["n"].as_double(), 3.5);
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("z"));
  // Missing keys / wrong types degrade to the null value, not UB.
  EXPECT_TRUE(v["z"]["nested"].is_null());
  EXPECT_EQ(v["z"].as_double(), 0.0);
  EXPECT_EQ(v["n"].as_string(), "");
}

TEST(JsonRead, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok("\"caf\xc3\xa9\"").as_string(), "caf\xc3\xa9");
}

TEST(JsonRead, RejectsMalformedInput) {
  EXPECT_TRUE(parse_fails(""));
  EXPECT_TRUE(parse_fails("{"));
  EXPECT_TRUE(parse_fails("[1,]"));
  EXPECT_TRUE(parse_fails("{\"a\":}"));
  EXPECT_TRUE(parse_fails("{\"a\" 1}"));
  EXPECT_TRUE(parse_fails("tru"));
  EXPECT_TRUE(parse_fails("1 2"));            // trailing garbage
  EXPECT_TRUE(parse_fails("\"\\x41\""));      // bad escape
  EXPECT_TRUE(parse_fails("\"\\ud83d\""));    // lone high surrogate
  EXPECT_TRUE(parse_fails("\"a\nb\""));       // raw control char
  EXPECT_TRUE(parse_fails("\"unterminated"));
}

TEST(JsonRead, DeepNestingCapped) {
  std::string deep(200, '[');
  deep += "1";
  deep.append(200, ']');
  EXPECT_FALSE(parse_fails(deep));  // 200 < cap
  std::string too_deep(300, '[');
  too_deep += "1";
  too_deep.append(300, ']');
  EXPECT_TRUE(parse_fails(too_deep));  // 300 > cap (256)
}

TEST(JsonRead, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "tab\there \"quoted\"");
  w.kv("count", std::uint64_t{18446744073709551615ull});
  w.kv("x", -0.125);
  w.end_object();
  const JsonValue v = parse_ok(os.str());
  EXPECT_EQ(v["name"].as_string(), "tab\there \"quoted\"");
  EXPECT_DOUBLE_EQ(v["count"].as_double(), 18446744073709551615.0);
  EXPECT_DOUBLE_EQ(v["x"].as_double(), -0.125);
}

#if GEP_OBS

// --- Profile aggregation over synthetic traces ----------------------------

obs::TraceEvent ev(char kind, int depth, std::uint64_t t0, std::uint64_t t1,
                   std::uint32_t m) {
  obs::TraceEvent e;
  e.kind = kind;
  e.depth = static_cast<std::uint16_t>(depth);
  e.t0_ns = t0;
  e.t1_ns = t1;
  e.m = m;
  return e;
}

std::map<std::string, const obs::ProfileEntry*> by_key(
    const obs::Profile& p) {
  std::map<std::string, const obs::ProfileEntry*> out;
  for (const obs::ProfileEntry& e : p.entries())
    out[std::string(1, e.kind) + "@" + std::to_string(e.depth)] = &e;
  return out;
}

TEST(Profile, SelfTimeExcludesNestedChildren) {
  obs::ThreadTrace t;
  t.tid = 0;
  // A[0,1000] encloses B[100,400] and D[500,600]; recorded out of order
  // (the tracer appends at span *end*, children first).
  t.events.push_back(ev('B', 1, 100, 400, 32));
  t.events.push_back(ev('D', 1, 500, 600, 32));
  t.events.push_back(ev('A', 0, 0, 1000, 64));
  const obs::Profile p = obs::Profile::from_traces({t});

  EXPECT_EQ(p.wall_ns(), 1000u);
  EXPECT_EQ(p.attributed_ns(), 1000u);  // one root span
  EXPECT_DOUBLE_EQ(p.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);

  const auto m = by_key(p);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("A@0")->calls, 1u);
  EXPECT_EQ(m.at("A@0")->total_ns, 1000u);
  EXPECT_EQ(m.at("A@0")->self_ns, 600u);  // 1000 - 300 - 100
  EXPECT_DOUBLE_EQ(m.at("A@0")->mean_m, 64.0);
  EXPECT_EQ(m.at("B@1")->total_ns, 300u);
  EXPECT_EQ(m.at("B@1")->self_ns, 300u);
  EXPECT_EQ(m.at("D@1")->total_ns, 100u);
  EXPECT_EQ(m.at("D@1")->self_ns, 100u);

  ASSERT_EQ(p.threads().size(), 1u);
  EXPECT_EQ(p.threads()[0].busy_ns, 1000u);
  EXPECT_DOUBLE_EQ(p.threads()[0].busy_fraction, 1.0);
}

TEST(Profile, FoldedStacksMatchKnownTree) {
  obs::ThreadTrace t;
  t.tid = 3;
  t.events.push_back(ev('B', 1, 100, 400, 32));
  t.events.push_back(ev('A', 0, 0, 1000, 64));
  const obs::Profile p = obs::Profile::from_traces({t});
  const std::string folded = p.folded();
  // One line per distinct path, flamegraph.pl format: the count is the
  // final space-separated token.
  EXPECT_NE(folded.find("t3;A m=64 700\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("t3;A m=64;B m=32 300\n"), std::string::npos)
      << folded;
  // Prefix variant used by the bench reporter.
  const std::string pf = p.folded("fig;label");
  EXPECT_NE(pf.find("fig;label;t3;A m=64 700\n"), std::string::npos) << pf;
}

TEST(Profile, SiblingSpansAreNotNested) {
  obs::ThreadTrace t;
  t.tid = 0;
  // Two same-depth roots back to back: the second must not be treated
  // as a child of the first (equal boundary timestamps).
  t.events.push_back(ev('A', 0, 0, 500, 64));
  t.events.push_back(ev('D', 0, 500, 900, 64));
  const obs::Profile p = obs::Profile::from_traces({t});
  const auto m = by_key(p);
  EXPECT_EQ(m.at("A@0")->self_ns, 500u);
  EXPECT_EQ(m.at("D@0")->self_ns, 400u);
  EXPECT_EQ(p.attributed_ns(), 900u);
  EXPECT_EQ(p.wall_ns(), 900u);
}

TEST(Profile, IdenticalIntervalNestsByDepth) {
  obs::ThreadTrace t;
  t.tid = 0;
  // A zero-width parent/child pair with identical timestamps: depth
  // breaks the tie, so the child attributes under the parent instead of
  // becoming a second root.
  t.events.push_back(ev('B', 1, 100, 200, 32));
  t.events.push_back(ev('A', 0, 100, 200, 64));
  const obs::Profile p = obs::Profile::from_traces({t});
  const auto m = by_key(p);
  EXPECT_EQ(m.at("A@0")->self_ns, 0u);
  EXPECT_EQ(m.at("B@1")->self_ns, 100u);
  EXPECT_EQ(p.attributed_ns(), 100u);  // only the depth-0 span is a root
}

TEST(Profile, MultiThreadBalanceAndCoverage) {
  obs::ThreadTrace t0, t1;
  t0.tid = 0;
  t0.events.push_back(ev('A', 0, 0, 1000, 64));
  t1.tid = 1;
  t1.events.push_back(ev('C', 0, 0, 500, 64));
  const obs::Profile p = obs::Profile::from_traces({t0, t1});
  EXPECT_EQ(p.wall_ns(), 1000u);
  EXPECT_EQ(p.attributed_ns(), 1500u);
  EXPECT_DOUBLE_EQ(p.coverage(), 0.75);           // 1500 / (1000 * 2)
  EXPECT_DOUBLE_EQ(p.imbalance(), 1000.0 / 750);  // max / mean busy
  ASSERT_EQ(p.threads().size(), 2u);
}

TEST(Profile, DroppedCountSurvivesAggregation) {
  obs::ThreadTrace t;
  t.tid = 0;
  t.dropped = 7;
  t.events.push_back(ev('A', 0, 0, 10, 8));
  const obs::Profile p = obs::Profile::from_traces({t});
  EXPECT_EQ(p.dropped(), 7u);
  const JsonValue v = parse_ok(p.json());
  EXPECT_EQ(v["dropped"].as_int(), 7);
}

TEST(Profile, EmptyTraceYieldsValidEmptyJson) {
  const obs::Profile p = obs::Profile::from_traces({});
  EXPECT_TRUE(p.empty());
  const JsonValue v = parse_ok(p.json());
  EXPECT_EQ(v["entries"].size(), 0u);
  EXPECT_EQ(p.folded(), "");
}

TEST(Profile, JsonShapeMatchesEntries) {
  obs::ThreadTrace t;
  t.tid = 2;
  t.events.push_back(ev('B', 1, 10, 40, 16));
  t.events.push_back(ev('A', 0, 0, 100, 32));
  const obs::Profile p = obs::Profile::from_traces({t});
  const JsonValue v = parse_ok(p.json());
  EXPECT_EQ(v["wall_ns"].as_int(), 100);
  EXPECT_EQ(v["entries"].size(), 2u);
  bool saw_a = false;
  for (const JsonValue& e : v["entries"].items()) {
    if (e["kind"].as_string() == "A" && e["depth"].as_int() == 0) {
      saw_a = true;
      EXPECT_EQ(e["total_ns"].as_int(), 100);
      EXPECT_EQ(e["self_ns"].as_int(), 70);
      EXPECT_EQ(e["calls"].as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_a);
  ASSERT_EQ(v["threads"].size(), 1u);
  EXPECT_EQ(v["threads"][0]["tid"].as_int(), 2);
}

// --- End to end: typed I-GEP LU under the tracer --------------------------

TEST(Profile, TypedLuProfileCoversTracedTime) {
  const index_t n = 1024;
  Matrix<double> a(n, n);
  SplitMix64 rng(11);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 2.0;
  }
  obs::Tracer::clear();
  obs::Tracer::start();
  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, 64};
  igep_lu(inv, st, n, {64});
  obs::Tracer::stop();
  const obs::Profile p = obs::Profile::collect();
  obs::Tracer::clear();

  ASSERT_FALSE(p.empty());
  // Acceptance: the (kind, depth) rows account for >= 95% of traced wall
  // time (sequential run: one thread).
  EXPECT_GE(p.coverage(), 0.95) << p.json();
  // All four recursion families appear.
  std::string kinds;
  for (const obs::ProfileEntry& e : p.entries())
    if (kinds.find(e.kind) == std::string::npos) kinds += e.kind;
  for (char k : {'A', 'B', 'C', 'D'})
    EXPECT_NE(kinds.find(k), std::string::npos) << kinds;
  // total >= self everywhere; depth-0 row is the single root A call.
  std::uint64_t total_self = 0;
  for (const obs::ProfileEntry& e : p.entries()) {
    EXPECT_GE(e.total_ns, e.self_ns);
    total_self += e.self_ns;
  }
  EXPECT_EQ(total_self, p.attributed_ns());
  // Folded stacks: every line ends in a positive integer count and
  // starts at the root frame.
  std::istringstream lines(p.folded());
  std::string line;
  int nlines = 0;
  while (std::getline(lines, line)) {
    ++nlines;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string count = line.substr(sp + 1);
    EXPECT_FALSE(count.empty());
    EXPECT_EQ(count.find_first_not_of("0123456789"), std::string::npos)
        << line;
    EXPECT_EQ(line.rfind("t0;", 0), 0u) << line;
  }
  EXPECT_GT(nlines, 0);
}

// --- Leaf sampler ---------------------------------------------------------

TEST(LeafSampler, PeriodOneSamplesEveryLeaf) {
  obs::LeafSampler::reset();
  obs::LeafSampler::enable(1);
  EXPECT_TRUE(obs::LeafSampler::enabled());
  EXPECT_EQ(obs::LeafSampler::period(), 1u);

  const index_t n = 128;
  const index_t base = 32;
  Matrix<double> a(n, n);
  SplitMix64 rng(5);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 2.0;
  }
  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, base};
  igep_lu(inv, st, n, {base});
  obs::LeafSampler::disable();

  const std::vector<obs::RooflinePoint> pts = obs::LeafSampler::snapshot();
  ASSERT_FALSE(pts.empty());
  std::uint64_t samples = 0;
  for (const obs::RooflinePoint& pt : pts) {
    samples += pt.samples;
    // Every sampled leaf is an m=base box: flops = samples * 2 * base^3.
    const std::uint64_t per_leaf =
        2ull * base * base * base;
    EXPECT_EQ(pt.flops, pt.samples * per_leaf) << pt.kind;
  }
  // n/base = 4: the typed recursion visits 4^2=16 A/B/C-layer leaves at
  // the top split and more below; exact count depends on the recursion,
  // but with period 1 every leaf is sampled, so there are at least
  // (n/base)^2 of them.
  EXPECT_GE(samples, 16u);
  obs::LeafSampler::reset();
  EXPECT_TRUE(obs::LeafSampler::snapshot().empty());
}

TEST(LeafSampler, DisabledSamplesNothing) {
  obs::LeafSampler::reset();
  obs::LeafSampler::disable();
  { obs::ScopedLeafSample s('A', 64); }
  { obs::ScopedLeafSample s('D', 64); }
  EXPECT_TRUE(obs::LeafSampler::snapshot().empty());
}

#endif  // GEP_OBS

// --- Bench reporter: repeats, median, MAD ---------------------------------

TEST(BenchReport, MedianOfRepeatsWithMad) {
  EXPECT_DOUBLE_EQ(bench::median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(bench::median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(bench::median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(bench::mad_of({5.0}), 0.0);
  // {1,2,3,4,100}: median 3, |dev| = {2,1,0,1,97}, MAD = 1 — the
  // outlier doesn't blow up the noise scale.
  EXPECT_DOUBLE_EQ(bench::mad_of({1.0, 2.0, 3.0, 4.0, 100.0}), 1.0);
}

TEST(BenchReport, RepeatedRunsRecordStatsInJson) {
  setenv("GEP_BENCH_REPEATS", "5", 1);
  int calls = 0;
  {
    bench::BenchReport rep("tmp_profile_test", 1.0);
    rep.timed("probe", 64, 1e6, [&calls] {
      ++calls;
      volatile double x = 1.0;
      for (int i = 0; i < 50000; ++i) x = x * 1.0000001 + 1e-9;
    });
    ASSERT_TRUE(rep.write());
  }
  unsetenv("GEP_BENCH_REPEATS");
  EXPECT_EQ(calls, 6);  // 1 warmup + 5 timed

  std::ifstream in("BENCH_tmp_profile_test.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue v = parse_ok(buf.str());
  EXPECT_EQ(v["schema_version"].as_int(), bench::kBenchSchemaVersion);
  EXPECT_EQ(v["bench_repeats"].as_int(), 5);
  ASSERT_EQ(v["runs"].size(), 1u);
  const JsonValue& r = v["runs"][0];
  EXPECT_EQ(r["repeats"].as_int(), 5);
  EXPECT_GT(r["seconds"].as_double(), 0.0);
  EXPECT_GT(r["seconds_min"].as_double(), 0.0);
  EXPECT_LE(r["seconds_min"].as_double(), r["seconds"].as_double());
  EXPECT_GE(r["seconds_mad"].as_double(), 0.0);
  EXPECT_TRUE(v.has("trace_dropped"));
  std::remove("BENCH_tmp_profile_test.json");
}

TEST(BenchReport, HandicapScalesMatchingLabelOnly) {
  setenv("GEP_BENCH_HANDICAP", "slow:4.0", 1);
  EXPECT_DOUBLE_EQ(bench::handicap_factor("a slow run"), 4.0);
  EXPECT_DOUBLE_EQ(bench::handicap_factor("fast run"), 1.0);
  unsetenv("GEP_BENCH_HANDICAP");
  EXPECT_DOUBLE_EQ(bench::handicap_factor("a slow run"), 1.0);
  // Labels containing ':' still parse (factor after the LAST colon).
  setenv("GEP_BENCH_HANDICAP", "p=2:run:1.5", 1);
  EXPECT_DOUBLE_EQ(bench::handicap_factor("p=2:run x"), 1.5);
  unsetenv("GEP_BENCH_HANDICAP");
}

}  // namespace
}  // namespace gep
