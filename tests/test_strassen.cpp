// Strassen-fused packed GEMM (simd/strassen.*): numerics against the
// classic path, engagement/fallback contract, determinism, the scaled
// GE form, config plumbing, and the typed engine's Strassen-eligible
// D-kind leaves gated by Freivalds / residual certificates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/apps.hpp"
#include "blas/blas.hpp"
#include "gep/kernels.hpp"
#include "gep/numeric_guard.hpp"
#include "obs/registry.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm_leaf.hpp"
#include "simd/strassen.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

std::vector<double> random_buf(index_t count, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = g.uniform(-1.0, 1.0);
  return v;
}

// Reference c += alpha * a * b, plain triple loop.
void naive_gemm(index_t m, index_t n, index_t k, double alpha,
                const double* a, index_t lda, const double* b, index_t ldb,
                double* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) {
      const double aip = alpha * a[i * lda + p];
      for (index_t j = 0; j < n; ++j) {
        c[i * ldc + j] += aip * b[p * ldb + j];
      }
    }
  }
}

double max_abs_diff(const std::vector<double>& x,
                    const std::vector<double>& y) {
  double e = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    e = std::max(e, std::abs(x[i] - y[i]));
  }
  return e;
}

bool bitwise_equal(const std::vector<double>& x,
                   const std::vector<double>& y) {
  return std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0;
}

Matrix<double> dd_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(0.5, 1.5);
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

// Defaults are measured on the dev/CI host (bench_kernels
// --tune-strassen); pin them so a silent change shows up as a test
// edit. Env overrides skip the pin, so the forced-Strassen CI leg can
// still run this binary.
TEST(Strassen, PinnedDefaults) {
  EXPECT_EQ(simd::kStrassenMaxLevels, 2);
  EXPECT_EQ(simd::kStrassenLevelsDefault, 1);
  EXPECT_EQ(simd::kStrassenMinMDefault, 384);
  EXPECT_EQ(simd::kStrassenMinMFloor, 16);
  EXPECT_EQ(simd::kMaxGemmOperands, 4);
  if (std::getenv("GEP_STRASSEN_LEVELS") == nullptr) {
    EXPECT_EQ(simd::strassen_levels(), simd::kStrassenLevelsDefault);
  }
  if (std::getenv("GEP_STRASSEN_MIN_M") == nullptr) {
    EXPECT_EQ(simd::strassen_min_m(), simd::kStrassenMinMDefault);
  }
}

TEST(Strassen, PlannedLevelsFollowsThreshold) {
  {
    simd::ScopedGemmOptions g({2, 16});
    EXPECT_EQ(simd::strassen_planned_levels(64, 64, 64), 2);
    EXPECT_EQ(simd::strassen_planned_levels(16, 64, 64), 1);  // 8 < 16 next
    EXPECT_EQ(simd::strassen_planned_levels(15, 64, 64), 0);
  }
  {
    simd::ScopedGemmOptions g({0, 16});
    EXPECT_EQ(simd::strassen_planned_levels(4096, 4096, 4096), 0);
  }
  {
    simd::ScopedGemmOptions g({1, 128});
    EXPECT_EQ(simd::strassen_planned_levels(128, 128, 128), 1);
    EXPECT_EQ(simd::strassen_planned_levels(127, 128, 128), 0);
  }
}

// Forward error vs the classic path across square, non-square, odd
// (dynamic peeling), and micro-tile-fringe shapes, at both depths.
TEST(Strassen, ForwardErrorVsClassic) {
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{64, 64, 64},  {96, 96, 96},   {97, 97, 97},
                          {64, 80, 48},  {33, 65, 129},  {128, 37, 90},
                          {130, 130, 62}};
  for (int levels : {1, 2}) {
    for (const Shape& s : shapes) {
      auto a = random_buf(s.m * s.k, 101), b = random_buf(s.k * s.n, 102);
      auto ref = random_buf(s.m * s.n, 103);
      auto got = ref;
      naive_gemm(s.m, s.n, s.k, 0.5, a.data(), s.k, b.data(), s.n, ref.data(),
                 s.n);
      simd::ScopedGemmOptions g({levels, 16});
      ASSERT_TRUE(simd::strassen_gemm(s.m, s.n, s.k, 0.5, a.data(), s.k,
                                      b.data(), s.n, got.data(), s.n))
          << "did not engage at m=" << s.m;
      // Strassen inflates the classic O(k eps) bound by a constant per
      // level; these shapes with |a|,|b| <= 1 stay comfortably inside.
      EXPECT_LT(max_abs_diff(ref, got), 1e-11)
          << "levels=" << levels << " m=" << s.m << " n=" << s.n
          << " k=" << s.k;
    }
  }
}

// Operands and destination as submatrix views of larger parents (the
// shape every D-kind leaf call has): entries outside the C view must
// stay untouched.
TEST(Strassen, SubmatrixViewsLeaveSurroundingsAlone) {
  const index_t ld = 300, m = 128, n = 96, k = 112;
  auto parent_a = random_buf(ld * ld, 201);
  auto parent_b = random_buf(ld * ld, 202);
  auto parent_c = random_buf(ld * ld, 203);
  auto ref_c = parent_c;
  const index_t ao = 3 * ld + 17, bo = 41 * ld + 5, co = 11 * ld + 99;
  naive_gemm(m, n, k, 1.0, parent_a.data() + ao, ld, parent_b.data() + bo, ld,
             ref_c.data() + co, ld);
  simd::ScopedGemmOptions g({2, 16});
  ASSERT_TRUE(simd::strassen_gemm(m, n, k, 1.0, parent_a.data() + ao, ld,
                                  parent_b.data() + bo, ld,
                                  parent_c.data() + co, ld));
  double err = 0;
  index_t outside_diffs = 0;
  for (index_t i = 0; i < ld; ++i) {
    for (index_t j = 0; j < ld; ++j) {
      const std::size_t at = static_cast<std::size_t>(i * ld + j);
      const index_t ci = i - co / ld, cj = j - co % ld;
      const bool inside = ci >= 0 && ci < m && cj >= 0 && cj < n;
      if (inside) {
        err = std::max(err, std::abs(parent_c[at] - ref_c[at]));
      } else if (parent_c[at] != ref_c[at]) {
        ++outside_diffs;
      }
    }
  }
  EXPECT_LT(err, 1e-11);
  EXPECT_EQ(outside_diffs, 0);
}

TEST(Strassen, DeterministicRunToRun) {
  const index_t m = 97, n = 120, k = 64;
  auto a = random_buf(m * k, 301), b = random_buf(k * n, 302);
  for (int levels : {1, 2}) {
    simd::ScopedGemmOptions g({levels, 16});
    auto c1 = random_buf(m * n, 303);
    auto c2 = c1;
    ASSERT_TRUE(simd::strassen_gemm(m, n, k, 1.0, a.data(), k, b.data(), n,
                                    c1.data(), n));
    ASSERT_TRUE(simd::strassen_gemm(m, n, k, 1.0, a.data(), k, b.data(), n,
                                    c2.data(), n));
    EXPECT_TRUE(bitwise_equal(c1, c2)) << "levels=" << levels;
  }
}

// levels=0 (and sub-threshold sizes) must leave the classic path
// bit-identical to a build without the Strassen layer: strassen_gemm
// declines and blas::dgemm produces the same bits either way.
TEST(Strassen, DisabledAndSubThresholdFallBackBitIdentically) {
  const index_t n = 96;
  auto a = random_buf(n * n, 401), b = random_buf(n * n, 402);
  auto c0 = random_buf(n * n, 403);
  {
    simd::ScopedGemmOptions g({0, 16});
    auto c = c0;
    EXPECT_FALSE(simd::strassen_gemm(n, n, n, 1.0, a.data(), n, b.data(), n,
                                     c.data(), n));
    EXPECT_TRUE(bitwise_equal(c, c0));  // untouched on decline
  }
  std::vector<double> classic;
  {
    simd::ScopedGemmOptions g({0, 16});
    auto c = c0;
    blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    classic = c;
  }
  {
    // Enabled but below threshold: same classic bits.
    simd::ScopedGemmOptions g({2, n + 1});
    auto c = c0;
    blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    EXPECT_TRUE(bitwise_equal(c, classic));
  }
}

// The scalar micro-kernel leg (the $GEP_FORCE_SCALAR CI lane) must run
// the same fused recursion within tolerance of the dispatched one.
TEST(Strassen, ScalarFallbackEquivalence) {
  const index_t m = 96, n = 104, k = 80;
  auto a = random_buf(m * k, 501), b = random_buf(k * n, 502);
  auto ref = random_buf(m * n, 503);
  auto scalar_c = ref;
  naive_gemm(m, n, k, 1.0, a.data(), k, b.data(), n, ref.data(), n);
  simd::ScopedGemmOptions g({2, 16});
  simd::force_level(simd::Level::Scalar);
  const bool engaged = simd::strassen_gemm(m, n, k, 1.0, a.data(), k,
                                           b.data(), n, scalar_c.data(), n);
  simd::clear_forced_level();
  ASSERT_TRUE(engaged);
  EXPECT_LT(max_abs_diff(ref, scalar_c), 1e-11);
  auto active_c = random_buf(m * n, 503);
  ASSERT_TRUE(simd::strassen_gemm(m, n, k, 1.0, a.data(), k, b.data(), n,
                                  active_c.data(), n));
  EXPECT_LT(max_abs_diff(scalar_c, active_c), 1e-11);
}

// Scaled GE form: x -= (u * diag(w)^-1) * v with the hoisted
// reciprocals, against a scalar reference using the identical rounding
// (multiply by 1/w, not divide).
TEST(Strassen, ScaledGePathMatchesReference) {
  const index_t m = 96;
  auto u = random_buf(m * m, 601), v = random_buf(m * m, 602);
  Matrix<double> w = dd_matrix(m, 603);
  auto ref = random_buf(m * m, 604);
  auto got = ref;
  std::vector<double> inv(static_cast<std::size_t>(m));
  for (index_t p = 0; p < m; ++p) inv[p] = 1.0 / w(p, p);
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < m; ++p) {
      const double t = u[i * m + p] * inv[p];
      for (index_t j = 0; j < m; ++j) ref[i * m + j] -= t * v[p * m + j];
    }
  }
  simd::ScopedGemmOptions g({1, 16});
  ASSERT_TRUE(simd::strassen_gemm_scaled(got.data(), u.data(), v.data(),
                                         w.data(), m, m, m, m, m));
  EXPECT_LT(max_abs_diff(ref, got), 1e-11);
}

// gemm_tile consults the Strassen layer ahead of the classic leaf path
// (the typed engine's MM/D-kind route).
TEST(Strassen, GemmTileRoutesThroughStrassen) {
  const index_t m = 64;
  auto u = random_buf(m * m, 701), v = random_buf(m * m, 702);
  auto ref = random_buf(m * m, 703);
  auto got = ref;
  {
    simd::ScopedGemmOptions g({0, 16});
    simd::gemm_tile(ref.data(), u.data(), v.data(), m, m, m, m, -1.0);
  }
  const std::uint64_t calls_before =
      obs::counter("kernels.strassen.calls").value();
  {
    simd::ScopedGemmOptions g({1, 16});
    simd::gemm_tile(got.data(), u.data(), v.data(), m, m, m, m, -1.0);
  }
  if (obs::kEnabled) {
    EXPECT_GT(obs::counter("kernels.strassen.calls").value(), calls_before);
  }
  EXPECT_LT(max_abs_diff(ref, got), 1e-11);
}

TEST(Strassen, FallbackCounterTracksDeclines) {
  if (!obs::kEnabled) GTEST_SKIP() << "GEP_OBS disabled";
  const index_t n = 32;
  auto a = random_buf(n * n, 801), b = random_buf(n * n, 802),
       c = random_buf(n * n, 803);
  const std::uint64_t before =
      obs::counter("kernels.strassen.fallbacks").value();
  simd::ScopedGemmOptions g({2, n + 1});  // configured on, below threshold
  EXPECT_FALSE(simd::strassen_gemm(n, n, n, 1.0, a.data(), n, b.data(), n,
                                   c.data(), n));
  EXPECT_GT(obs::counter("kernels.strassen.fallbacks").value(), before);
}

// End-to-end gates: typed I-GEP with Strassen-eligible D-kind leaves
// must still pass the randomized product / residual certificates. The
// base size is chosen so leaves clear the (floored) threshold and the
// engagement counter proves the fast path actually ran.
TEST(Strassen, TypedMatmulWithStrassenLeavesPassesFreivalds) {
  const index_t n = 512, base = 256;
  Matrix<double> a(n, n), b(n, n);
  SplitMix64 g(901);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = g.uniform(-1.0, 1.0);
      b(i, j) = g.uniform(-1.0, 1.0);
    }
  }
  Matrix<double> before(n, n, 0.25), c = before;
  apps::RunOptions opts;
  opts.base_size = base;
  opts.gemm = {1, 128};
  const std::uint64_t calls_before =
      obs::counter("kernels.strassen.calls").value();
  apps::multiply_add(c, a, b, apps::Engine::IGep, opts);
  if (obs::kEnabled && detail::leaf_use_avx2()) {
    EXPECT_GT(obs::counter("kernels.strassen.calls").value(), calls_before);
  }
  EXPECT_TRUE(apps::freivalds_check(c, before, a, b));
}

TEST(Strassen, TypedLuWithStrassenLeavesPassesResidual) {
  const index_t n = 512, base = 256;
  const Matrix<double> a = dd_matrix(n, 902);
  Matrix<double> lu = a;
  apps::RunOptions opts;
  opts.base_size = base;
  opts.gemm = {1, 128};
  apps::lu_decompose(lu, apps::Engine::IGep, opts);
  EXPECT_LT(lu_residual_sample(a, lu, 16), 1e-9);
  // And against the classic-leaf factorization, elementwise.
  Matrix<double> lu_classic = a;
  apps::RunOptions off = opts;
  off.gemm = {0, -1};
  apps::lu_decompose(lu_classic, apps::Engine::IGep, off);
  double err = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      err = std::max(err, std::abs(lu(i, j) - lu_classic(i, j)));
    }
  }
  EXPECT_LT(err, 1e-8);
}

}  // namespace
}  // namespace gep
