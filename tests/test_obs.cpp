// Tests for the observability layer (src/obs/): metrics registry,
// hardware counters, span tracer, and the JSON writer. These run in the
// default GEP_OBS=1 configuration; test_obs_off.cpp covers the
// compiled-out build.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace gep {
namespace {

// --- JsonWriter (always compiled, both configs) ---------------------------

TEST(JsonWriter, NestedStructure) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("a", 1);
  w.key("b");
  w.begin_array();
  w.value(std::uint64_t{2});
  w.value("x\"y\\z\n");
  w.begin_object();
  w.kv("c", true);
  w.key("z");
  w.null();
  w.end_object();
  w.end_array();
  w.kv("d", 2.5);
  w.end_object();
  const std::string s = os.str();
  EXPECT_EQ(s, "{\"a\":1,\"b\":[2,\"x\\\"y\\\\z\\n\","
               "{\"c\":true,\"z\":null}],\"d\":2.5}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1]");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("m");
  w.raw("{\"k\":7}");
  w.end_object();
  EXPECT_EQ(os.str(), "{\"m\":{\"k\":7}}");
}

TEST(JsonWriter, ControlCharsEscaped) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.value(std::string("\x01\x1f\x7f"));
  // 0x01 and 0x1f must become \u00XX escapes; 0x7f is legal raw JSON.
  EXPECT_EQ(os.str(), "\"\\u0001\\u001f\x7f\"");
}

TEST(JsonWriter, Utf8PassesThrough) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.value(std::string("caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x98\x80"));
  EXPECT_EQ(os.str(), "\"caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x98\x80\"");
}

TEST(JsonWriter, DeepNestingBalances) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  constexpr int kDepth = 100;
  for (int i = 0; i < kDepth; ++i) {
    w.begin_object();
    w.key("k");
  }
  w.value(1);
  for (int i = 0; i < kDepth; ++i) w.end_object();
  const std::string s = os.str();
  std::size_t opens = 0, closes = 0;
  for (char ch : s) {
    if (ch == '{') ++opens;
    if (ch == '}') ++closes;
  }
  EXPECT_EQ(opens, static_cast<std::size_t>(kDepth));
  EXPECT_EQ(closes, static_cast<std::size_t>(kDepth));
}

// --- JsonValue reader error paths (always compiled, both configs) ---------

// Every malformed input must fail cleanly with a positioned error, never
// crash or accept: the reader feeds the bench-diff gate, which parses
// files produced by OTHER commits.
TEST(JsonReader, MalformedInputsAreRejectedWithPosition) {
  const char* bad[] = {
      "",                       // empty input
      "{\"a\": }",              // missing value
      "{\"a\": 1",              // unterminated object
      "[1, 2",                  // unterminated array
      "[1, 2,]",                // trailing comma -> expected value
      "{\"a\" 1}",              // missing ':'
      "{a: 1}",                 // unquoted key
      "\"abc",                  // unterminated string
      "\"a\\q\"",               // bad escape character
      "\"a\\u12\"",             // truncated \u escape
      "\"a\\uZZZZ\"",           // non-hex \u escape
      "\"\\uD800\"",            // lone high surrogate, end of string
      "\"\\uD800\\u0041\"",     // high surrogate + non-low-surrogate
      "truth",                  // bad literal
      "nul",                    // truncated literal
      "1.2.3",                  // malformed number
      "1e999",                  // overflow -> non-finite
      "\"a\tb\"",               // raw control character in string
      "{} {}",                  // trailing characters
  };
  for (const char* in : bad) {
    obs::JsonValue v;
    std::string err;
    EXPECT_FALSE(obs::JsonValue::parse(in, &v, &err)) << "input: " << in;
    EXPECT_NE(err.find("at offset"), std::string::npos)
        << "error must carry a position for input: " << in;
  }
}

TEST(JsonReader, NestingDepthIsCapped) {
  // kMaxDepth = 256: one past must fail, the cap itself must parse.
  auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s += "1";
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  obs::JsonValue v;
  std::string err;
  EXPECT_TRUE(obs::JsonValue::parse(nested(200), &v, &err)) << err;
  EXPECT_FALSE(obs::JsonValue::parse(nested(300), &v, &err));
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;
}

TEST(JsonReader, SurrogatePairsDecodeToUtf8) {
  obs::JsonValue v;
  std::string err;
  // U+1F600 as a surrogate pair; expect the 4-byte UTF-8 encoding.
  ASSERT_TRUE(obs::JsonValue::parse("\"\\uD83D\\uDE00\"", &v, &err)) << err;
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
  // BMP escape and a bare low surrogate region value (not paired) both
  // decode; the latter is passed through as its 3-byte encoding.
  ASSERT_TRUE(obs::JsonValue::parse("\"\\u00E9\"", &v, &err)) << err;
  EXPECT_EQ(v.as_string(), "\xC3\xA9");
}

TEST(JsonReader, LookupChainsThroughMissingKeys) {
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse("{\"a\": {\"b\": 3}}", &v, &err)) << err;
  EXPECT_EQ(v["a"]["b"].as_int(), 3);
  EXPECT_TRUE(v["a"]["missing"]["deeper"].is_null());
  EXPECT_EQ(v["nope"].as_double(7.5), 7.5);  // null -> caller's default
  EXPECT_EQ(v["a"]["b"].as_double(), 3.0);
  EXPECT_EQ(v[std::size_t{0}].type(), obs::JsonValue::Type::Null);
}

#if GEP_OBS

// --- Registry -------------------------------------------------------------

TEST(Registry, CounterAggregatesAcrossThreads) {
  obs::Registry reg;
  obs::Counter c = reg.counter("t.c");
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (int k = 0; k < kIncs; ++k) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Registry, SameNameSameCounter) {
  obs::Registry reg;
  obs::Counter a = reg.counter("dup");
  obs::Counter b = reg.counter("dup");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Registry, GaugeHoldsLastValue) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("t.g");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Registry, HistogramLog2Buckets) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("t.h");
  // bucket 0 = {0}; bucket b (b >= 1) = [2^(b-1), 2^b).
  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1
  h.observe(2);    // bucket 2
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3
  h.observe(7);    // bucket 3
  h.observe(8);    // bucket 4
  h.observe(1023); // bucket 10
  h.observe(1024); // bucket 11
  std::vector<obs::MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::MetricSample& s = snap[0];
  EXPECT_EQ(s.kind, obs::MetricSample::Kind::Histogram);
  EXPECT_EQ(s.name, "t.h");
  EXPECT_EQ(s.count, 9u);
  ASSERT_EQ(s.buckets.size(), static_cast<std::size_t>(obs::kHistBuckets));
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.buckets[4], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_EQ(s.buckets[11], 1u);
}

TEST(Registry, HistogramHugeValuesClampToLastBucket) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("t.h2");
  h.observe(~std::uint64_t{0});
  std::vector<obs::MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].buckets[obs::kHistBuckets - 1], 1u);
}

TEST(Registry, ResetClearsEverything) {
  obs::Registry reg;
  obs::Counter c = reg.counter("r.c");
  obs::Gauge g = reg.gauge("r.g");
  obs::Histogram h = reg.histogram("r.h");
  c.inc(5);
  g.set(9.0);
  h.observe(17);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  for (const obs::MetricSample& s : reg.snapshot()) EXPECT_EQ(s.count, 0u);
  c.inc();  // handles stay live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, SnapshotSortedAndTyped) {
  obs::Registry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.gauge").set(1.0);
  reg.histogram("c.hist").observe(4);
  std::vector<obs::MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // snapshot() groups counters, then gauges, then histograms; names are
  // sorted within each group (std::map iteration).
  EXPECT_EQ(snap[0].name, "b.count");
  EXPECT_EQ(snap[0].kind, obs::MetricSample::Kind::Counter);
  EXPECT_EQ(snap[1].name, "a.gauge");
  EXPECT_EQ(snap[1].kind, obs::MetricSample::Kind::Gauge);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].kind, obs::MetricSample::Kind::Histogram);
}

TEST(Registry, GlobalSnapshotJsonIsWellFormed) {
  obs::counter("json.check.counter").inc(42);
  obs::gauge("json.check.gauge").set(2.5);
  obs::histogram("json.check.hist").observe(100);
  const std::string js = obs::snapshot_json();
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"json.check.counter\":42"), std::string::npos);
  EXPECT_NE(js.find("\"json.check.gauge\":2.5"), std::string::npos);
  EXPECT_NE(js.find("\"json.check.hist\""), std::string::npos);
  // Balanced braces/brackets (no quoting subtleties in metric names).
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < js.size(); ++i) {
    char ch = js[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- Histogram percentile estimation --------------------------------------

TEST(Registry, HistPercentileUpperBounds) {
  // 64 log2 buckets; bucket 0 = {0}, bucket b = [2^(b-1), 2^b). The
  // estimate is the upper bound of the bucket covering the quantile.
  std::vector<std::uint64_t> buckets(obs::kHistBuckets, 0);
  EXPECT_EQ(obs::hist_percentile(buckets, 0.5), 0u);  // empty
  EXPECT_EQ(obs::hist_max(buckets), 0u);
  buckets[0] = 10;  // ten zeros
  EXPECT_EQ(obs::hist_percentile(buckets, 0.5), 0u);
  buckets[4] = 10;  // ten values in [8, 16)
  // 20 samples: p50 lands on the 10th = last zero, p95 on the 19th.
  EXPECT_EQ(obs::hist_percentile(buckets, 0.5), 0u);
  EXPECT_EQ(obs::hist_percentile(buckets, 0.95), 15u);  // 2^4 - 1
  EXPECT_EQ(obs::hist_max(buckets), 15u);
  buckets[10] = 1;  // one value in [512, 1024)
  EXPECT_EQ(obs::hist_max(buckets), 1023u);
  EXPECT_EQ(obs::hist_percentile(buckets, 1.0), 1023u);
}

TEST(Registry, HistPercentileEdgeCases) {
  // Empty histogram: every quantile (and the max) is 0, no division.
  const std::vector<std::uint64_t> empty(obs::kHistBuckets, 0);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(obs::hist_percentile(empty, q), 0u) << "q=" << q;
  }
  // A single populated bucket answers EVERY quantile with its upper
  // bound — the only value the log2 sketch can produce.
  std::vector<std::uint64_t> single(obs::kHistBuckets, 0);
  single[7] = 1;  // one observation in [64, 128)
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(obs::hist_percentile(single, q), 127u) << "q=" << q;
  }
  EXPECT_EQ(obs::hist_max(single), 127u);
  // q = 0 targets rank 0: the first populated bucket satisfies it.
  EXPECT_EQ(obs::hist_percentile(single, 0.0), 127u);
  // Short vectors (fewer than 64 buckets) are handled positionally.
  std::vector<std::uint64_t> shorty(3, 0);
  shorty[2] = 5;
  EXPECT_EQ(obs::hist_percentile(shorty, 0.5), 3u);
  EXPECT_EQ(obs::hist_max(shorty), 3u);
}

TEST(Registry, SnapshotJsonHasHistogramPercentiles) {
  obs::histogram("pctl.check.hist").observe(100);
  obs::histogram("pctl.check.hist").observe(3);
  const std::string js = obs::snapshot_json();
  const std::size_t at = js.find("\"pctl.check.hist\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(js.find("\"p50\"", at), std::string::npos);
  EXPECT_NE(js.find("\"p95\"", at), std::string::npos);
  EXPECT_NE(js.find("\"max\"", at), std::string::npos);
}

// --- Hardware counters ----------------------------------------------------

TEST(HwCounters, SampleOrSkip) {
  obs::HwCounters hw;
  if (!hw.available()) {
    GTEST_SKIP() << "perf_event_open unavailable (permissions/kernel)";
  }
  hw.start();
  // Burn a few hundred thousand instructions.
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001 + 1e-9;
  obs::HwSample s = hw.stop();
  ASSERT_TRUE(s.valid);
  if (s.has_instructions) EXPECT_GT(s.instructions, 100000u);
  if (s.has_cycles) EXPECT_GT(s.cycles, 0u);
  if (s.has_cycles && s.has_instructions) EXPECT_GT(s.ipc(), 0.0);
}

TEST(HwCounters, StopWithoutStartIsInvalid) {
  obs::HwCounters hw;
  obs::HwSample s = hw.read();
  if (!hw.available()) EXPECT_FALSE(s.valid);
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, SpansRecordedOnlyWhileActive) {
  obs::Tracer::clear();
  { obs::ScopedSpan s('A', 0, 0, 0, 0, 64); }  // inactive: dropped
  EXPECT_EQ(obs::Tracer::event_count(), 0u);
  obs::Tracer::start();
  { obs::ScopedSpan s('B', 1, 0, 64, 0, 32); }
  { obs::ScopedSpan s('D', 2, 32, 32, 0, 16); }
  obs::Tracer::stop();
  { obs::ScopedSpan s('C', 0, 0, 0, 0, 8); }  // stopped again: dropped
  EXPECT_EQ(obs::Tracer::event_count(), 2u);
  obs::Tracer::clear();
  EXPECT_EQ(obs::Tracer::event_count(), 0u);
}

TEST(Tracer, OverflowCountsDroppedSpans) {
  obs::Tracer::clear();
  obs::Tracer::start();
  constexpr std::size_t kCap = 1u << 20;  // trace.cpp per-thread cap
  obs::TraceEvent e;
  e.kind = 'A';
  for (std::size_t i = 0; i < kCap + 3; ++i) {
    e.t0_ns = i;
    e.t1_ns = i + 1;
    obs::Tracer::record(e);
  }
  obs::Tracer::stop();
  EXPECT_EQ(obs::Tracer::event_count(), kCap);
  EXPECT_EQ(obs::Tracer::dropped_count(), 3u);
  // The dropped count survives into the profile snapshot path...
  std::vector<obs::ThreadTrace> snap = obs::Tracer::snapshot();
  std::uint64_t dropped = 0;
  for (const obs::ThreadTrace& t : snap) dropped += t.dropped;
  EXPECT_EQ(dropped, 3u);
  // ...and clear() resets it.
  obs::Tracer::clear();
  EXPECT_EQ(obs::Tracer::dropped_count(), 0u);
}

TEST(Tracer, ChromeTraceFileIsValidJson) {
  obs::Tracer::clear();
  obs::Tracer::start();
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([t] {
      for (int i = 0; i < 10; ++i)
        obs::ScopedSpan s("ABCD"[i % 4], t, i, i, i, 64);
    });
  }
  for (auto& t : ts) t.join();
  obs::Tracer::stop();
  EXPECT_EQ(obs::Tracer::event_count(), 40u);

  const char* path = "test_obs.trace.json";
  ASSERT_TRUE(obs::Tracer::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string js = buf.str();
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(js.find("\"cat\":\"igep\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"A\""), std::string::npos);
  // Must parse at the brace level.
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < js.size(); ++i) {
    char ch = js[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
  std::remove(path);
  obs::Tracer::clear();
}

#endif  // GEP_OBS

}  // namespace
}  // namespace gep
