#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/typed.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(BlockFile, RoundTripAndSparseReads) {
  BlockFile f(4096);
  std::vector<char> w(4096, 'x'), r(4096, 0);
  f.write_page(3, w.data());
  f.read_page(3, r.data());
  EXPECT_EQ(w, r);
  // Never-written page reads back as zeros.
  f.read_page(7, r.data());
  for (char c : r) EXPECT_EQ(c, 0);
  EXPECT_EQ(f.pages_written(), 1u);
  EXPECT_EQ(f.pages_read(), 2u);
}

TEST(PageCache, HitsAndFaults) {
  PageCache cache(4 * 4096, 4096);
  int f = cache.register_file(16);
  void* p0 = cache.pin(f, 0, true);
  std::memset(p0, 1, 4096);
  void* p0again = cache.pin(f, 0, false);
  EXPECT_EQ(p0, p0again);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().page_ins, 1u);
}

TEST(PageCache, EvictionWritesBackDirtyPages) {
  PageCache cache(2 * 4096, 4096);  // 2 frames
  int f = cache.register_file(16);
  char* p = static_cast<char*>(cache.pin(f, 0, true));
  p[0] = 42;
  cache.pin(f, 1, false);
  cache.pin(f, 2, false);  // evicts page 0 (dirty -> writeback)
  EXPECT_GE(cache.stats().page_outs, 1u);
  char* back = static_cast<char*>(cache.pin(f, 0, false));
  EXPECT_EQ(back[0], 42);
}

TEST(PageCache, IoWaitAccumulatesPerModel) {
  DiskModel model{10.0, 100.0};  // 10ms seek, 100MB/s
  PageCache cache(4096, 4096, model);
  int f = cache.register_file(4);
  cache.pin(f, 0, false);
  cache.pin(f, 1, false);  // evict clean page 0
  // Two page-ins of 4096B: 2*(0.010 + 4096/1e8).
  EXPECT_NEAR(cache.stats().io_wait_seconds, 2 * (0.010 + 4096.0 / 1e8),
              1e-9);
}

TEST(PageCache, StatsAccountingUnderEvictionPressure) {
  PageCache cache(2 * 4096, 4096);  // 2 frames, 8-page working set
  int f = cache.register_file(8);
  // Cyclic sweep with writes: constant eviction + writeback traffic.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      char* d = static_cast<char*>(cache.pin(f, p, true));
      d[0] = static_cast<char>(p);
    }
  }
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.pins, 24u);
  // Invariant: every pin is either a hit or a fault.
  EXPECT_EQ(s.hits + s.misses(), s.pins);
  // A 2-frame cache sweeping 8 pages can never hit.
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses(), 24u);
  EXPECT_EQ(s.page_ins, 24u);
  // Every fault after the first two repurposes a frame.
  EXPECT_EQ(s.evictions, 22u);
  // All evicted pages were dirty.
  EXPECT_EQ(s.page_outs, 22u);
}

TEST(PageCache, ResetStatsClearsCountersButNotContents) {
  PageCache cache(2 * 4096, 4096);
  int f = cache.register_file(8);
  char* d = static_cast<char*>(cache.pin(f, 0, true));
  d[0] = 77;
  for (std::uint64_t p = 1; p < 6; ++p) cache.pin(f, p, false);
  ASSERT_GT(cache.stats().pins, 0u);
  ASSERT_GT(cache.stats().evictions, 0u);

  cache.reset_stats();
  PageCacheStats s = cache.stats();
  EXPECT_EQ(s.pins, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses(), 0u);
  EXPECT_EQ(s.page_ins, 0u);
  EXPECT_EQ(s.page_outs, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.io_wait_seconds, 0.0);

  // Cached data survives the reset and stats re-accumulate from zero.
  char* back = static_cast<char*>(cache.pin(f, 0, false));
  EXPECT_EQ(back[0], 77);
  s = cache.stats();
  EXPECT_EQ(s.pins, 1u);
  EXPECT_EQ(s.hits + s.misses(), 1u);
}

TEST(PageCache, MultipleFilesDoNotCollide) {
  PageCache cache(8 * 4096, 4096);
  int f1 = cache.register_file(4);
  int f2 = cache.register_file(4);
  char* a = static_cast<char*>(cache.pin(f1, 0, true));
  a[0] = 1;
  char* b = static_cast<char*>(cache.pin(f2, 0, true));
  b[0] = 2;
  EXPECT_EQ(static_cast<char*>(cache.pin(f1, 0, false))[0], 1);
  EXPECT_EQ(static_cast<char*>(cache.pin(f2, 0, false))[0], 2);
}

TEST(OocMatrix, GetSetRoundTripAcrossEvictions) {
  PageCache cache(2 * 256, 256);  // tiny: 2 frames of 32 doubles
  OocMatrix<double> m(cache, 32, 32);
  SplitMix64 g(1);
  Matrix<double> ref(32, 32);
  for (index_t i = 0; i < 32; ++i)
    for (index_t j = 0; j < 32; ++j) ref(i, j) = g.next_double();
  m.load(ref);
  Matrix<double> back = m.to_matrix();
  EXPECT_TRUE(approx_equal(ref, back, 0.0));
  EXPECT_GT(cache.stats().page_outs, 0u);  // forced write-backs happened
}

TEST(OocMatrix, MemoSurvivesInterleavedMatrices) {
  PageCache cache(2 * 256, 256);
  OocMatrix<double> a(cache, 16, 16), b(cache, 16, 16);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      a.set(i, j, 1.0 + static_cast<double>(i));
      b.set(i, j, -2.0 - static_cast<double>(j));
    }
  }
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      EXPECT_EQ(a.get(i, j), 1.0 + static_cast<double>(i));
      EXPECT_EQ(b.get(i, j), -2.0 - static_cast<double>(j));
    }
  }
}

// The same generic engines must produce identical results out-of-core.
TEST(OocEngines, GepMatchesInCore) {
  const index_t n = 32;
  SplitMix64 g(2);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 9.0);
    init(i, i) = 0;
  }
  Matrix<double> ref = init;
  run_gep(ref, MinPlusF{}, FullSet{n});

  PageCache cache(n * 8 * 4, n * 8);  // 4 row-pages cached
  OocMatrix<double> ooc(cache, n, n);
  ooc.load(init);
  run_gep(ooc, MinPlusF{}, FullSet{n});
  EXPECT_TRUE(approx_equal(ref, ooc.to_matrix(), 0.0));
}

TEST(OocEngines, IGepMatchesInCore) {
  const index_t n = 64;
  SplitMix64 g(3);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 9.0);
    init(i, i) = 0;
  }
  Matrix<double> ref = init;
  run_igep(ref, MinPlusF{}, FullSet{n}, {8});

  PageCache cache(1024 * 8, 512);
  OocMatrix<double> ooc(cache, n, n);
  ooc.load(init);
  run_igep(ooc, MinPlusF{}, FullSet{n}, {8});
  EXPECT_TRUE(approx_equal(ref, ooc.to_matrix(), 0.0));
}

TEST(OocEngines, CGepWithOocAuxMatchesInCore) {
  const index_t n = 16;
  SplitMix64 g(4);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1.0, 1.0);
  Matrix<double> ref = init;
  run_gep(ref, SumF{}, FullSet{n});

  PageCache cache(8 * 256, 256);
  OocMatrix<double> c(cache, n, n), u0(cache, n, n), u1(cache, n, n),
      v0(cache, n, n), v1(cache, n, n);
  c.load(init);
  u0.copy_from(c);
  u1.copy_from(c);
  v0.copy_from(c);
  v1.copy_from(c);
  run_cgep_with_aux(c, u0, u1, v0, v1, SumF{}, FullSet{n}, {1});
  EXPECT_TRUE(approx_equal(ref, c.to_matrix(), 0.0));
}

TEST(OocTiledMatrix, RoundTripAndTileGeometry) {
  PageCache cache(8 * 512, 512);  // 64-double pages -> 8x8 tiles
  OocTiledMatrix<double> m(cache, 20, 36);
  EXPECT_EQ(m.tile_side(), 8);
  SplitMix64 g(9);
  Matrix<double> ref(20, 36);
  for (index_t i = 0; i < 20; ++i)
    for (index_t j = 0; j < 36; ++j) ref(i, j) = g.next_double();
  m.load(ref);
  EXPECT_TRUE(approx_equal(ref, m.to_matrix(), 0.0));
}

TEST(OocTiledMatrix, EnginesMatchRowMajorLayout) {
  const index_t n = 64;
  SplitMix64 g(10);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 9.0);
    init(i, i) = 0;
  }
  PageCache c1(16 * 512, 512), c2(16 * 512, 512);
  OocMatrix<double> rm(c1, n, n);
  OocTiledMatrix<double> tm(c2, n, n);
  rm.load(init);
  tm.load(init);
  run_igep(rm, MinPlusF{}, FullSet{n}, {8});
  run_igep(tm, MinPlusF{}, FullSet{n}, {8});
  EXPECT_TRUE(approx_equal(rm.to_matrix(), tm.to_matrix(), 0.0));
}

TEST(OocTiledMatrix, FewerIosThanRowMajorForRecursiveEngine) {
  const index_t n = 128;
  Matrix<double> init(n, n, 1.0);
  const std::uint64_t B = 2048, M = 8 * B;  // starved cache
  PageCache c1(M, B), c2(M, B);
  OocMatrix<double> rm(c1, n, n);
  OocTiledMatrix<double> tm(c2, n, n);
  rm.load(init);
  tm.load(init);
  c1.reset_stats();
  c2.reset_stats();
  run_igep(rm, MinPlusF{}, FullSet{n}, {8});
  run_igep(tm, MinPlusF{}, FullSet{n}, {8});
  EXPECT_LT(c2.stats().io() * 2, c1.stats().io())
      << "tiled=" << c2.stats().io() << " rm=" << c1.stats().io();
}

// I/O volume: out-of-core I-GEP must transfer far fewer pages than GEP
// at equal (M, B) — the content of Fig. 7.
TEST(OocEngines, IGepDoesFarLessIoThanGep) {
  const index_t n = 64;
  const std::uint64_t B = 128;    // 16 doubles per page
  const std::uint64_t M = 64 * B; // 64 frames: a base-case box fits, rows don't
  Matrix<double> init(n, n, 1.0);

  PageCache cg(M, B);
  OocMatrix<double> a(cg, n, n);
  a.load(init);
  cg.reset_stats();
  run_gep(a, MinPlusF{}, FullSet{n});
  const auto gep_io = cg.stats().io();

  PageCache ci(M, B);
  OocMatrix<double> b(ci, n, n);
  b.load(init);
  ci.reset_stats();
  run_igep(b, MinPlusF{}, FullSet{n}, {8});
  const auto igep_io = ci.stats().io();

  EXPECT_GT(gep_io, 5 * igep_io) << "GEP=" << gep_io << " IGEP=" << igep_io;
}

}  // namespace
}  // namespace gep

namespace ooc_typed_tests {

// NOTE: appended suite — the typed out-of-core engine (pinned tiles).
using namespace gep;

TEST(PagePin, LocksFramesAgainstEviction) {
  PageCache cache(2 * 256, 256);  // two frames
  int f = cache.register_file(8);
  auto pin0 = cache.acquire(f, 0, true);
  std::memset(pin0.data(), 7, 256);
  // Fault two more pages: frame of page 0 must survive (pinned).
  cache.pin(f, 1, false);
  cache.pin(f, 2, false);
  EXPECT_EQ(static_cast<char*>(pin0.data())[0], 7);
  pin0.release();
  // After release the frame is evictable again.
  cache.pin(f, 3, false);
  cache.pin(f, 4, false);
  char* back = static_cast<char*>(cache.pin(f, 0, false));
  EXPECT_EQ(back[0], 7);  // was written back and reloaded
}

TEST(PagePin, AllFramesPinnedThrows) {
  PageCache cache(2 * 256, 256);
  int f = cache.register_file(8);
  auto p0 = cache.acquire(f, 0, false);
  auto p1 = cache.acquire(f, 1, false);
  EXPECT_THROW(cache.pin(f, 2, false), std::runtime_error);
}

TEST(PagePin, SelfMoveAssignmentKeepsPin) {
  PageCache cache(2 * 256, 256);
  int f = cache.register_file(8);
  auto pin = cache.acquire(f, 0, true);
  std::memset(pin.data(), 9, 256);
  PageCache::PagePin& alias = pin;  // dodge -Wself-move
  pin = std::move(alias);
  ASSERT_NE(pin.data(), nullptr);  // self-move must not drop the pin
  // Frame still locked: fault the other frame twice, page 0 survives.
  cache.pin(f, 1, false);
  cache.pin(f, 2, false);
  EXPECT_EQ(static_cast<char*>(pin.data())[0], 9);
}

TEST(PagePin, MovedFromAndReleasedPinsReadNull) {
  PageCache cache(2 * 256, 256);
  int f = cache.register_file(8);
  auto a = cache.acquire(f, 0, false);
  auto b = std::move(a);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_NE(b.data(), nullptr);
  b.release();
  EXPECT_EQ(b.data(), nullptr);
}

TEST(PageCache, OutOfRangePageOrFileThrows) {
  PageCache cache(4 * 256, 256);
  int f = cache.register_file(8);
  EXPECT_THROW(cache.pin(f, 8, false), std::out_of_range);
  EXPECT_THROW(cache.acquire(f, 1ULL << 40, false), std::out_of_range);
  EXPECT_THROW(cache.pin(f + 1, 0, false), std::out_of_range);
  EXPECT_THROW(cache.pin(-1, 0, false), std::out_of_range);
  EXPECT_THROW(cache.prefetch(f, 8), std::out_of_range);
  // In-range accesses still work.
  EXPECT_NO_THROW(cache.pin(f, 7, false));
  // A file larger than the 40-bit key space is clamped to it.
  int g = cache.register_file(1ULL << 50);
  EXPECT_THROW(cache.pin(g, 1ULL << 40, false), std::out_of_range);
}

TEST(PageCache, PrefetchWithoutWorkerIsCountedDropped) {
  PageCache cache(4 * 256, 256);
  int f = cache.register_file(8);
  EXPECT_FALSE(cache.async_io_enabled());
  cache.prefetch(f, 3);
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.prefetch_issued, 1u);
  EXPECT_EQ(s.prefetch_dropped, 1u);
  EXPECT_EQ(s.page_ins, 0u);  // no I/O happened
}

TEST(OocTyped, FloydWarshallMatchesInCore) {
  const index_t n = 128;
  SplitMix64 g(21);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 9.0);
    init(i, i) = 0;
  }
  const index_t bs = 16;
  Matrix<double> ref = init;
  RowMajorStore<double> st{ref.data(), n, bs};
  SeqInvoker inv;
  igep_floyd_warshall(inv, st, n, {bs});

  PageCache cache(8 * bs * bs * 8, bs * bs * 8);  // 8 tile frames
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  ooc_igep_floyd_warshall(m);
  EXPECT_TRUE(approx_equal(ref, m.to_matrix(), 0.0));
}

TEST(OocTyped, LUMatchesInCore) {
  const index_t n = 64;
  SplitMix64 g(22);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    init(i, i) += n + 2.0;
  }
  const index_t bs = 8;
  Matrix<double> ref = init;
  RowMajorStore<double> st{ref.data(), n, bs};
  SeqInvoker inv;
  igep_lu(inv, st, n, {bs});

  PageCache cache(8 * bs * bs * 8, bs * bs * 8);
  OocTiledMatrix<double> m(cache, n, n, bs);
  m.load(init);
  ooc_igep_lu(m);
  EXPECT_TRUE(approx_equal(ref, m.to_matrix(), 0.0));
}

TEST(OocTyped, MatMulMatchesInCore) {
  const index_t n = 64, bs = 8;
  SplitMix64 g(23);
  Matrix<double> am(n, n), bm(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      am(i, j) = g.uniform(-1, 1);
      bm(i, j) = g.uniform(-1, 1);
    }
  Matrix<double> ref(n, n, 0.0);
  RowMajorStore<double> cst{ref.data(), n, bs};
  RowMajorStore<const double> ast{am.data(), n, bs};
  RowMajorStore<const double> bst{bm.data(), n, bs};
  SeqInvoker inv;
  igep_matmul(inv, cst, ast, bst, n, {bs});

  PageCache cache(16 * bs * bs * 8, bs * bs * 8);
  OocTiledMatrix<double> c(cache, n, n, bs), a(cache, n, n, bs),
      b(cache, n, n, bs);
  a.load(am);
  b.load(bm);
  c.load(Matrix<double>(n, n, 0.0));
  ooc_igep_matmul(c, a, b);
  EXPECT_TRUE(approx_equal(ref, c.to_matrix(), 0.0));
}

TEST(OocTyped, BlockGranularIoMatchesGenericEngine) {
  // Same recursion, so the typed engine's page I/O should be no worse
  // than the generic per-element engine on the same layout.
  const index_t n = 128, bs = 16;
  Matrix<double> init(n, n, 1.0);
  const std::uint64_t B = bs * bs * 8, M = 8 * B;

  PageCache c1(M, B);
  OocTiledMatrix<double> m1(c1, n, n, bs);
  m1.load(init);
  c1.reset_stats();
  ooc_igep_floyd_warshall(m1);
  const auto typed_io = c1.stats().io();

  PageCache c2(M, B);
  OocTiledMatrix<double> m2(c2, n, n, bs);
  m2.load(init);
  c2.reset_stats();
  run_igep(m2, MinPlusF{}, FullSet{n}, {bs});
  const auto generic_io = c2.stats().io();

  EXPECT_LE(typed_io, generic_io + generic_io / 4)
      << "typed=" << typed_io << " generic=" << generic_io;
}

TEST(OocTyped, RejectsBadShapes) {
  PageCache cache(8 * 512, 512);
  OocTiledMatrix<double> rect(cache, 16, 32, 8);
  EXPECT_THROW(ooc_igep_floyd_warshall(rect), std::invalid_argument);
}

}  // namespace ooc_typed_tests
