#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/simple_dp.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using apps::simple_dp_iterative;
using apps::simple_dp_recursive;

Matrix<double> leaves(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> d(n, n, 0.0);
  for (index_t i = 0; i + 1 < n; ++i) d(i, i + 1) = g.uniform(0.0, 10.0);
  return d;
}

// Polygon-triangulation-style weight.
apps::DpWeightFn vertex_weight(index_t n, std::uint64_t seed) {
  auto v = std::make_shared<std::vector<double>>(n);
  SplitMix64 g(seed);
  for (auto& x : *v) x = g.uniform(1.0, 3.0);
  return [v](index_t i, index_t j) { return (*v)[i] * (*v)[j]; };
}

class SimpleDp : public ::testing::TestWithParam<index_t> {};

TEST_P(SimpleDp, RecursiveMatchesIterative) {
  const index_t n = GetParam();
  auto w = vertex_weight(n, 40 + static_cast<unsigned>(n));
  Matrix<double> a = leaves(n, 41 + static_cast<unsigned>(n));
  Matrix<double> b = a;
  simple_dp_iterative(a, w);
  simple_dp_recursive(b, w, {4});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), 1e-10) << "n=" << n << " @" << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimpleDp,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 16, 33, 64, 100));

TEST(SimpleDp, BaseSizeInvariance) {
  const index_t n = 40;
  auto w = vertex_weight(n, 50);
  Matrix<double> ref = leaves(n, 51);
  Matrix<double> r0 = ref;
  simple_dp_iterative(r0, w);
  for (index_t base : {2, 3, 8, 16, 64}) {
    Matrix<double> b = ref;
    simple_dp_recursive(b, w, {base});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) {
        ASSERT_NEAR(r0(i, j), b(i, j), 1e-10) << "base=" << base;
      }
    }
  }
}

TEST(SimpleDp, MatrixChainKnownAnswer) {
  // Matrix chain via polygon weights is a different DP; instead verify a
  // hand-computed tiny instance of our DP form:
  // n=4 vertices, leaves d01=1, d12=2, d23=3, w(i,j)=1.
  Matrix<double> d(4, 4, 0.0);
  d(0, 1) = 1;
  d(1, 2) = 2;
  d(2, 3) = 3;
  auto w = [](index_t, index_t) { return 1.0; };
  // d02 = w + d01+d12 = 4; d13 = w + d12+d23 = 6;
  // d03 = w + min(d01+d13, d02+d23) = 1 + min(7, 7) = 8.
  simple_dp_iterative(d, w);
  EXPECT_DOUBLE_EQ(d(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 3), 6.0);
  EXPECT_DOUBLE_EQ(d(0, 3), 8.0);
  Matrix<double> r(4, 4, 0.0);
  r(0, 1) = 1;
  r(1, 2) = 2;
  r(2, 3) = 3;
  simple_dp_recursive(r, w, {2});
  EXPECT_DOUBLE_EQ(r(0, 3), 8.0);
}

TEST(SimpleDp, TinySizesNoOp) {
  auto w = [](index_t, index_t) { return 0.0; };
  Matrix<double> d1(1, 1, 0.0);
  simple_dp_recursive(d1, w);
  Matrix<double> d2(2, 2, 0.0);
  d2(0, 1) = 5;
  simple_dp_recursive(d2, w);
  EXPECT_DOUBLE_EQ(d2(0, 1), 5.0);
}

}  // namespace
}  // namespace gep
