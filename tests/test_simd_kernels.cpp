// SIMD-vs-scalar contract of the dispatched base-case kernels.
//
// Semiring kernels (fw, bottleneck, tc) must be BIT-EXACT against the
// scalar templates; the FMA kernels (ge, lu, mm) must agree within
// tolerance across every box kind (including the aliased A/B/C-kind
// operand patterns the typed engine produces) and be deterministic
// run-to-run at a fixed dispatch level. The guarded LU kernel must be
// bit-identical to the unguarded one on healthy input, per level.
//
// The semiring comparisons call the simd::*_avx2 kernels directly
// rather than through the gep::kernel_* wrappers: in TUs compiled with
// AVX-512 the wrappers deliberately keep those kernels on the (wider)
// autovectorized scalar path (GEP_SIMD_ROUTE_SEMIRING in
// gep/kernels.hpp), and the explicit kernels must stay covered either
// way. The FMA kernels route unconditionally, so their tests exercise
// the real wrapper dispatch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gep/kernels.hpp"
#include "gep/numeric_guard.hpp"
#include "obs/registry.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm_leaf.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

// Sizes chosen to hit every fringe case: below/at/above vector width,
// below/at/above the packed-GEMM threshold, and micro-tile remainders.
const index_t kSizes[] = {1, 2, 3, 5, 7, 8, 15, 16, 17, 31, 33, 64, 65, 96};

std::vector<double> random_tile(index_t m, index_t stride, std::uint64_t seed,
                                double lo, double hi) {
  SplitMix64 g(seed);
  std::vector<double> t(static_cast<std::size_t>(m * stride), 0.0);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j) t[static_cast<std::size_t>(i * stride + j)] = g.uniform(lo, hi);
  return t;
}

// Diagonally-dominant tile: well away from pivot breakdown so guarded
// and unguarded LU agree and no division amplifies the comparison.
std::vector<double> dominant_tile(index_t m, index_t stride,
                                  std::uint64_t seed) {
  auto t = random_tile(m, stride, seed, -1.0, 1.0);
  for (index_t i = 0; i < m; ++i)
    t[static_cast<std::size_t>(i * stride + i)] =
        2.0 + 0.25 * static_cast<double>(i % 7);
  return t;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

// Forces a dispatch level for the test body, restores CPUID selection
// after. Skips AVX2-comparison tests when the host can't run AVX2 or
// the process is pinned scalar via $GEP_FORCE_SCALAR (the CI fallback
// leg still runs the dispatch-semantics tests below).
class SimdKernels : public ::testing::Test {
 protected:
  void TearDown() override { simd::clear_forced_level(); }
};

// Must be a macro: GTEST_SKIP() returns only from the enclosing
// function, so a helper would skip itself and let the test run on.
#define REQUIRE_AVX2()                                  \
  do {                                                  \
    if (!simd::avx2_available())                        \
      GTEST_SKIP() << "host has no AVX2+FMA";           \
    if (simd::forced_scalar_env())                      \
      GTEST_SKIP() << "GEP_FORCE_SCALAR pins dispatch"; \
  } while (0)

// --- dispatch semantics ----------------------------------------------------

TEST_F(SimdKernels, EnvForcedScalarAlwaysWins) {
  if (simd::forced_scalar_env()) {
    simd::force_level(simd::Level::Avx2);
    EXPECT_EQ(simd::active(), simd::Level::Scalar);
    EXPECT_STREQ(simd::active_name(), "scalar");
  } else {
    // Without the env pin, active() follows the override / detection.
    simd::force_level(simd::Level::Scalar);
    EXPECT_EQ(simd::active(), simd::Level::Scalar);
    simd::clear_forced_level();
    EXPECT_EQ(simd::active() == simd::Level::Avx2, simd::avx2_available());
  }
}

TEST_F(SimdKernels, ForcingAvx2IsClampedToCapability) {
  if (simd::forced_scalar_env()) GTEST_SKIP() << "env pins scalar";
  simd::force_level(simd::Level::Avx2);
  EXPECT_EQ(simd::active() == simd::Level::Avx2, simd::avx2_available());
}

TEST_F(SimdKernels, DispatchCountersTick) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  REQUIRE_AVX2();
  obs::Counter avx2 = obs::counter("kernels.dispatch.avx2");
  obs::Counter scalar = obs::counter("kernels.dispatch.scalar");
  const index_t m = 8;
  auto x = random_tile(m, m, 1, -1, 1);
  auto u = random_tile(m, m, 2, -1, 1);
  auto v = random_tile(m, m, 3, -1, 1);

  simd::force_level(simd::Level::Avx2);
  const std::uint64_t a0 = avx2.value();
  kernel_mm(x.data(), u.data(), v.data(), m, m, m, m);
  EXPECT_EQ(avx2.value(), a0 + 1);

  simd::force_level(simd::Level::Scalar);
  const std::uint64_t s0 = scalar.value();
  kernel_mm(x.data(), u.data(), v.data(), m, m, m, m);
  EXPECT_EQ(scalar.value(), s0 + 1);
}

// --- semiring kernels: bit-exact -------------------------------------------

TEST_F(SimdKernels, FloydWarshallBitExact) {
  REQUIRE_AVX2();
  for (index_t m : kSizes) {
    for (index_t stride : {m, m + 3}) {
      auto u = random_tile(m, stride, 10 + static_cast<std::uint64_t>(m), 0.0,
                           10.0);
      auto v = random_tile(m, stride, 20 + static_cast<std::uint64_t>(m), 0.0,
                           10.0);
      auto x_s = random_tile(m, stride, 30 + static_cast<std::uint64_t>(m),
                             0.0, 10.0);
      auto x_v = x_s;
      scalar::kernel_fw(x_s.data(), u.data(), v.data(), m, stride, stride,
                        stride);
#if GEP_SIMD_X86
      simd::fw_avx2(x_v.data(), u.data(), v.data(), m, stride, stride, stride);
#endif
      EXPECT_TRUE(bitwise_equal(x_s, x_v)) << "m=" << m << " s=" << stride;
    }
  }
}

TEST_F(SimdKernels, FloydWarshallBitExactAliasedAKind) {
  REQUIRE_AVX2();
  for (index_t m : {5, 16, 33, 64}) {
    // A-kind box: x, u, v are the same tile (zero diagonal metric).
    auto a = random_tile(m, m, 40 + static_cast<std::uint64_t>(m), 0.1, 10.0);
    for (index_t i = 0; i < m; ++i) a[static_cast<std::size_t>(i * m + i)] = 0.0;
    auto b = a;
    scalar::kernel_fw(a.data(), a.data(), a.data(), m, m, m, m);
#if GEP_SIMD_X86
    simd::fw_avx2(b.data(), b.data(), b.data(), m, m, m, m);
#endif
    EXPECT_TRUE(bitwise_equal(a, b)) << "m=" << m;
  }
}

TEST_F(SimdKernels, BottleneckBitExact) {
  REQUIRE_AVX2();
  for (index_t m : kSizes) {
    for (index_t stride : {m, m + 3}) {
      auto u = random_tile(m, stride, 50 + static_cast<std::uint64_t>(m), 0.0,
                           5.0);
      auto v = random_tile(m, stride, 60 + static_cast<std::uint64_t>(m), 0.0,
                           5.0);
      auto x_s = random_tile(m, stride, 70 + static_cast<std::uint64_t>(m),
                             0.0, 5.0);
      auto x_v = x_s;
      scalar::kernel_bottleneck(x_s.data(), u.data(), v.data(), m, stride,
                                stride, stride);
#if GEP_SIMD_X86
      simd::bottleneck_avx2(x_v.data(), u.data(), v.data(), m, stride, stride,
                            stride);
#endif
      EXPECT_TRUE(bitwise_equal(x_s, x_v)) << "m=" << m << " s=" << stride;
    }
  }
}

TEST_F(SimdKernels, TransitiveClosureBitExact) {
  REQUIRE_AVX2();
  SplitMix64 g(7);
  for (index_t m : kSizes) {
    for (index_t stride : {m, m + 3}) {
      std::vector<std::uint8_t> u(static_cast<std::size_t>(m * stride), 0);
      std::vector<std::uint8_t> v(static_cast<std::size_t>(m * stride), 0);
      std::vector<std::uint8_t> x_s(static_cast<std::size_t>(m * stride), 0);
      for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < m; ++j) {
          const auto at = static_cast<std::size_t>(i * stride + j);
          u[at] = static_cast<std::uint8_t>(g.next() & 1);
          v[at] = static_cast<std::uint8_t>(g.next() & 1);
          x_s[at] = static_cast<std::uint8_t>(g.next() & 1);
        }
      auto x_v = x_s;
      scalar::kernel_tc(x_s.data(), u.data(), v.data(), m, stride, stride,
                        stride);
#if GEP_SIMD_X86
      simd::tc_avx2(x_v.data(), u.data(), v.data(), m, stride, stride, stride);
#endif
      EXPECT_EQ(0, std::memcmp(x_s.data(), x_v.data(), x_s.size()))
          << "m=" << m << " s=" << stride;
    }
  }
}

// --- FMA kernels: tolerance + determinism across every box kind ------------

// Operand aliasing per box kind (how the typed engine calls them):
//   A: x = u = v = w (one tile)    B: x = v, u = w
//   C: u = x, v = w                D: all distinct
struct KindCase {
  bool di, dj;
  const char* name;
};
const KindCase kKinds[] = {{true, true, "A"},
                           {true, false, "B"},
                           {false, true, "C"},
                           {false, false, "D"}};

// Runs `op(x, u, v, w)` with the aliasing pattern of `kind` on fresh
// copies of a dominant tile set, at the given dispatch level; returns x.
template <class Op>
std::vector<double> run_boxed(const KindCase& kind, index_t m, index_t stride,
                              std::uint64_t seed, simd::Level level, Op op) {
  auto x = dominant_tile(m, stride, seed);
  auto other = dominant_tile(m, stride, seed + 1000);
  simd::force_level(level);
  if (kind.di && kind.dj) {  // A: everything is the x tile
    op(x.data(), x.data(), x.data(), x.data());
  } else if (kind.di) {  // B: x = v, u = w
    op(x.data(), other.data(), x.data(), other.data());
  } else if (kind.dj) {  // C: u = x, v = w
    op(x.data(), x.data(), other.data(), other.data());
  } else {  // D: all distinct
    auto v = dominant_tile(m, stride, seed + 2000);
    auto w = dominant_tile(m, stride, seed + 3000);
    op(x.data(), other.data(), v.data(), w.data());
  }
  return x;
}

TEST_F(SimdKernels, GaussianEliminationMatchesScalarAllKinds) {
  REQUIRE_AVX2();
  for (const KindCase& kind : kKinds) {
    for (index_t m : kSizes) {
      for (index_t stride : {m, m + 3}) {
        auto op = [&](double* x, const double* u, const double* v,
                      const double* w) {
          kernel_ge(x, u, v, w, m, stride, stride, stride, stride, kind.di,
                    kind.dj);
        };
        auto ref = run_boxed(kind, m, stride, 100, simd::Level::Scalar, op);
        auto got = run_boxed(kind, m, stride, 100, simd::Level::Avx2, op);
        auto again = run_boxed(kind, m, stride, 100, simd::Level::Avx2, op);
        // Error grows with the k-sweep; the bound also covers portable
        // builds whose scalar baseline has no FMA contraction.
        EXPECT_LT(max_abs_diff(ref, got), 1e-11 * static_cast<double>(m))
            << "kind=" << kind.name << " m=" << m << " s=" << stride;
        EXPECT_TRUE(bitwise_equal(got, again))
            << "non-deterministic: kind=" << kind.name << " m=" << m;
      }
    }
  }
}

TEST_F(SimdKernels, LuMatchesScalarAllKinds) {
  REQUIRE_AVX2();
  for (const KindCase& kind : kKinds) {
    for (index_t m : kSizes) {
      for (index_t stride : {m, m + 3}) {
        auto op = [&](double* x, const double* u, const double* v,
                      const double* w) {
          kernel_lu(x, u, v, w, m, stride, stride, stride, stride, kind.di,
                    kind.dj);
        };
        auto ref = run_boxed(kind, m, stride, 200, simd::Level::Scalar, op);
        auto got = run_boxed(kind, m, stride, 200, simd::Level::Avx2, op);
        auto again = run_boxed(kind, m, stride, 200, simd::Level::Avx2, op);
        // Looser than GE: stored multipliers feed later k-steps, so the
        // contraction difference compounds through the elimination.
        EXPECT_LT(max_abs_diff(ref, got), 5e-11 * static_cast<double>(m))
            << "kind=" << kind.name << " m=" << m << " s=" << stride;
        EXPECT_TRUE(bitwise_equal(got, again))
            << "non-deterministic: kind=" << kind.name << " m=" << m;
      }
    }
  }
}

TEST_F(SimdKernels, GuardedLuBitIdenticalToUnguardedPerLevel) {
  REQUIRE_AVX2();
  const PivotGuard guard(BreakdownPolicy::Report, 1e-12, 1.0);
  for (simd::Level level : {simd::Level::Scalar, simd::Level::Avx2}) {
    for (const KindCase& kind : kKinds) {
      for (index_t m : {5, 15, 16, 17, 33, 64}) {
        auto plain_op = [&](double* x, const double* u, const double* v,
                            const double* w) {
          kernel_lu(x, u, v, w, m, m, m, m, m, kind.di, kind.dj);
        };
        auto guarded_op = [&](double* x, const double* u, const double* v,
                              const double* w) {
          kernel_lu_guarded(x, u, v, const_cast<double*>(w), m, m, m, m, m,
                            kind.di, kind.dj, guard, 0);
        };
        auto plain = run_boxed(kind, m, m, 300, level, plain_op);
        auto guarded = run_boxed(kind, m, m, 300, level, guarded_op);
        EXPECT_TRUE(bitwise_equal(plain, guarded))
            << "level=" << simd::level_name(level) << " kind=" << kind.name
            << " m=" << m;
      }
    }
  }
  EXPECT_EQ(guard.breakdowns(), 0u) << "dominant tiles should never trip";
}

TEST_F(SimdKernels, MatmulMatchesScalarAcrossGemmThreshold) {
  REQUIRE_AVX2();
  for (index_t m : kSizes) {
    for (index_t stride : {m, m + 3}) {
      auto u = random_tile(m, stride, 400 + static_cast<std::uint64_t>(m),
                           -1.0, 1.0);
      auto v = random_tile(m, stride, 500 + static_cast<std::uint64_t>(m),
                           -1.0, 1.0);
      auto x_s = random_tile(m, stride, 600 + static_cast<std::uint64_t>(m),
                             -1.0, 1.0);
      auto x_v = x_s;
      auto x_v2 = x_s;
      simd::force_level(simd::Level::Scalar);
      kernel_mm(x_s.data(), u.data(), v.data(), m, stride, stride, stride);
      simd::force_level(simd::Level::Avx2);
      kernel_mm(x_v.data(), u.data(), v.data(), m, stride, stride, stride);
      kernel_mm(x_v2.data(), u.data(), v.data(), m, stride, stride, stride);
      const double scale = static_cast<double>(m);
      EXPECT_LT(max_abs_diff(x_s, x_v), 1e-12 * scale)
          << "m=" << m << " s=" << stride;
      EXPECT_TRUE(bitwise_equal(x_v, x_v2)) << "non-deterministic m=" << m;
    }
  }
}

// The packed-GEMM route must kick in exactly at kGemmMinM — both sides
// of the boundary already run in the loops above; this pins the
// threshold itself so a silent change shows up as a test edit.
// gemm_min_m() is the runtime value ($GEP_GEMM_MIN_M override); with
// the env unset it must resolve to the same pinned default.
TEST_F(SimdKernels, GemmThresholdIsStable) {
  EXPECT_EQ(simd::kGemmMinM, 16);
  if (std::getenv("GEP_GEMM_MIN_M") == nullptr) {
    EXPECT_EQ(simd::gemm_min_m(), simd::kGemmMinM);
  }
}

}  // namespace
}  // namespace gep
