#include <gtest/gtest.h>

#include "cachesim/ideal_cache.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(IdealCache, SequentialScanMissesOncePerBlock) {
  IdealCache c(1024, 64);  // 16 blocks
  auto data = make_aligned<double>(1024);  // block-aligned buffer
  for (std::size_t i = 0; i < 1024; ++i) {
    c.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  }
  // 1024 doubles / 8 per 64B block = 128 compulsory misses.
  EXPECT_EQ(c.stats().misses, 1024u * 8 / 64);
  EXPECT_EQ(c.stats().accesses, 1024u);
}

TEST(IdealCache, WorkingSetWithinCapacityHitsAfterWarmup) {
  IdealCache c(64 * 16, 64);
  auto data = make_aligned<double>(8 * 16);  // exactly 16 aligned blocks
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 8u * 16u; ++i) {
      c.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
    }
  }
  EXPECT_EQ(c.stats().misses, 16u);  // compulsory only
}

TEST(IdealCache, LruEvictsLeastRecent) {
  IdealCache c(128, 64);  // 2 blocks
  c.access(0, false);     // block 0
  c.access(64, false);    // block 1
  c.access(0, false);     // touch 0 (now MRU)
  c.access(128, false);   // block 2: evicts 1
  c.access(0, false);     // hit
  EXPECT_EQ(c.stats().misses, 3u);
  c.access(64, false);  // miss again (was evicted)
  EXPECT_EQ(c.stats().misses, 4u);
}

TEST(IdealCache, DirtyWritebackCounted) {
  IdealCache c(64, 64);  // single block
  c.access(0, true);     // write block 0
  c.access(64, false);   // evicts dirty block 0 -> writeback
  EXPECT_EQ(c.stats().dirty_writebacks, 1u);
  c.flush();
  EXPECT_EQ(c.stats().dirty_writebacks, 1u);  // block 1 clean
  EXPECT_EQ(c.stats().io(), 2u + 1u);
}

TEST(SetAssoc, DirectMappedConflictMisses) {
  // 2 sets x 1 way, 64B lines: addresses 0 and 128 conflict (same set).
  SetAssocCache c({128, 64, 1});
  for (int r = 0; r < 4; ++r) {
    c.access(0, false);
    c.access(128, false);
  }
  EXPECT_EQ(c.stats().misses, 8u);  // ping-pong, never hits
  // Same trace in a 2-way cache of equal size: only compulsory misses.
  SetAssocCache c2({128, 64, 2});
  for (int r = 0; r < 4; ++r) {
    c2.access(0, false);
    c2.access(128, false);
  }
  EXPECT_EQ(c2.stats().misses, 2u);
}

TEST(SetAssoc, FullyAssociativeMatchesIdealCache) {
  SplitMix64 g(6);
  SetAssocCache sa({4096, 64, 0});  // ways=0 -> fully associative
  IdealCache ic(4096, 64);
  for (int t = 0; t < 20000; ++t) {
    std::uintptr_t addr = static_cast<std::uintptr_t>(g.below(32768));
    bool write = g.chance(0.3);
    sa.access(addr, write);
    ic.access(addr, write);
  }
  EXPECT_EQ(sa.stats().misses, ic.stats().misses);
}

TEST(Hierarchy, L2SeesOnlyL1Misses) {
  CacheHierarchy h(CacheGeometry{1024, 64, 2}, CacheGeometry{8192, 64, 8});
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  }
  EXPECT_EQ(h.l2_stats().accesses, h.l1_stats().misses);
  EXPECT_LE(h.l2_stats().misses, h.l1_stats().misses);
}

// --- The paper's I/O bounds, measured -------------------------------------

// GEP ~ n^3/B vs I-GEP ~ n^3/(B sqrt(M)): at n=128, M=32KB, B=64 the
// ratio should be large (sqrt(M in elements) ~ 64-ish up to constants).
TEST(IoBounds, IGepIncursFarFewerMissesThanGep) {
  const index_t n = 128;
  const std::uint64_t M = 32 * 1024, B = 64;
  Matrix<double> a(n, n, 1.0), b(n, n, 1.0);

  IdealCache cg(M, B);
  TracedAccess<double, IdealCache> ta(a.data(), n, &cg);
  run_gep(ta, MinPlusF{}, FullSet{n});

  IdealCache ci(M, B);
  TracedAccess<double, IdealCache> tb(b.data(), n, &ci);
  run_igep(tb, MinPlusF{}, FullSet{n}, {8});

  EXPECT_GT(cg.stats().misses, 6 * ci.stats().misses)
      << "GEP=" << cg.stats().misses << " I-GEP=" << ci.stats().misses;
}

// Scaling in M: I-GEP misses should shrink ~1/sqrt(M); GEP's barely move.
TEST(IoBounds, IGepMissesScaleWithSqrtM) {
  const index_t n = 128;
  const std::uint64_t B = 64;
  auto igep_misses = [&](std::uint64_t M) {
    Matrix<double> m(n, n, 1.0);
    IdealCache c(M, B);
    TracedAccess<double, IdealCache> t(m.data(), n, &c);
    run_igep(t, MinPlusF{}, FullSet{n}, {4});
    return c.stats().misses;
  };
  const auto m16 = igep_misses(16 * 1024);
  const auto m64 = igep_misses(64 * 1024);
  // 4x the cache -> ~2x fewer misses (allow generous slack for constants
  // and boundary effects).
  const double ratio =
      static_cast<double>(m16) / static_cast<double>(std::max<std::uint64_t>(m64, 1));
  EXPECT_GT(ratio, 1.4) << "m16=" << m16 << " m64=" << m64;
}

// Scaling in B at fixed M: both GEP and I-GEP misses ~ 1/B.
TEST(IoBounds, MissesScaleInverselyWithB) {
  const index_t n = 64;
  const std::uint64_t M = 16 * 1024;
  auto misses = [&](std::uint64_t B) {
    Matrix<double> m(n, n, 1.0);
    IdealCache c(M, B);
    TracedAccess<double, IdealCache> t(m.data(), n, &c);
    run_gep(t, MinPlusF{}, FullSet{n});
    return c.stats().misses;
  };
  const auto b64 = misses(64);
  const auto b256 = misses(256);
  const double ratio = static_cast<double>(b64) / static_cast<double>(b256);
  EXPECT_GT(ratio, 2.5) << "b64=" << b64 << " b256=" << b256;
  EXPECT_LT(ratio, 6.0);
}

}  // namespace
}  // namespace gep
