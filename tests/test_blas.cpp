#include <gtest/gtest.h>

#include "blas/blas.hpp"
#include "gep/iterative.hpp"
#include "gep/functors.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

Matrix<double> random_matrix(index_t r, index_t c, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(r, c);
  for (index_t i = 0; i < r; ++i)
    for (index_t j = 0; j < c; ++j) m(i, j) = g.uniform(-1.0, 1.0);
  return m;
}

void naive_gemm(index_t m, index_t n, index_t k, double alpha,
                const Matrix<double>& a, const Matrix<double>& b,
                Matrix<double>& c) {
  for (index_t i = 0; i < m; ++i)
    for (index_t p = 0; p < k; ++p) {
      const double aip = alpha * a(i, p);
      for (index_t j = 0; j < n; ++j) c(i, j) += aip * b(p, j);
    }
}

struct GemmShape {
  index_t m, n, k;
};

class DgemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(DgemmShapes, MatchesNaive) {
  auto [m, n, k] = GetParam();
  Matrix<double> a = random_matrix(m, k, 1);
  Matrix<double> b = random_matrix(k, n, 2);
  Matrix<double> c = random_matrix(m, n, 3);
  Matrix<double> ref = c;
  naive_gemm(m, n, k, 1.0, a, b, ref);
  blas::dgemm(m, n, k, 1.0, a.data(), k, b.data(), n, c.data(), n);
  EXPECT_LT(max_abs_diff(ref, c), 1e-11)
      << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{4, 8, 4},
                      GemmShape{5, 7, 3}, GemmShape{13, 9, 21},
                      GemmShape{64, 64, 64}, GemmShape{65, 33, 17},
                      GemmShape{128, 64, 256}, GemmShape{100, 100, 100},
                      GemmShape{256, 256, 256}));

TEST(Dgemm, NegativeAlphaSubtracts) {
  const index_t n = 32;
  Matrix<double> a = random_matrix(n, n, 4);
  Matrix<double> b = random_matrix(n, n, 5);
  Matrix<double> c = random_matrix(n, n, 6);
  Matrix<double> ref = c;
  naive_gemm(n, n, n, -1.0, a, b, ref);
  blas::dgemm(n, n, n, -1.0, a.data(), n, b.data(), n, c.data(), n);
  EXPECT_LT(max_abs_diff(ref, c), 1e-11);
}

TEST(Dgemm, SubmatrixLeadingDimensions) {
  // Operate on the 8x8 top-left corner of 16-wide buffers.
  Matrix<double> a = random_matrix(16, 16, 7);
  Matrix<double> b = random_matrix(16, 16, 8);
  Matrix<double> c(16, 16, 0.0);
  blas::dgemm(8, 8, 8, 1.0, a.data(), 16, b.data(), 16, c.data(), 16);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      double want = 0;
      for (index_t k = 0; k < 8; ++k) want += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), want, 1e-12);
    }
    for (index_t j = 8; j < 16; ++j) EXPECT_EQ(c(i, j), 0.0);  // untouched
  }
}

TEST(Dgemm, CustomBlockingMatches) {
  const index_t n = 96;
  Matrix<double> a = random_matrix(n, n, 9);
  Matrix<double> b = random_matrix(n, n, 10);
  Matrix<double> c1(n, n, 0.0), c2(n, n, 0.0);
  blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c1.data(), n);
  blas::GemmBlocking small{32, 48, 64};
  blas::dgemm_blocked(n, n, n, 1.0, a.data(), n, b.data(), n, c2.data(), n,
                      small);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
}

TEST(BlockedLU, MatchesIterativeGepLU) {
  for (index_t n : {1, 2, 7, 16, 63, 64, 65, 128, 200}) {
    SplitMix64 g(static_cast<std::uint64_t>(n));
    Matrix<double> a(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) a(i, j) = g.uniform(-1.0, 1.0);
      a(i, i) += static_cast<double>(n) + 2.0;
    }
    Matrix<double> ref = a;
    run_gep(ref, LUIndexedF{}, LUSet{n});
    blas::lu_nopivot(n, a.data(), n);
    EXPECT_LT(max_abs_diff(ref, a), 1e-9) << "n=" << n;
  }
}

TEST(BlockedLU, ReconstructsOriginal) {
  const index_t n = 64;
  SplitMix64 g(12);
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = g.uniform(-1.0, 1.0);
    a(i, i) += n + 2.0;
  }
  Matrix<double> lu = a;
  blas::lu_nopivot(n, lu.data(), n);
  // Check A == L*U with unit-diagonal L below and U on/above the diagonal.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double sum = 0;
      for (index_t k = 0; k <= std::min(i, j); ++k) {
        const double lik = (k == i) ? 1.0 : lu(i, k);
        sum += lik * lu(k, j);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-9) << i << "," << j;
    }
  }
}

TEST(TiledFW, MatchesIterativeGepFW) {
  for (index_t n : {8, 17, 64, 100, 128}) {
    SplitMix64 g(static_cast<std::uint64_t>(n) + 500);
    Matrix<double> d(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) d(i, j) = g.uniform(1.0, 100.0);
      d(i, i) = 0.0;
    }
    Matrix<double> ref = d;
    run_gep(ref, MinPlusF{}, FullSet{n});
    for (index_t tile : {4, 16, 64}) {
      Matrix<double> got = d;
      blas::fw_tiled(n, got.data(), n, tile);
      EXPECT_TRUE(approx_equal(ref, got, 1e-12))
          << "n=" << n << " tile=" << tile;
    }
  }
}

}  // namespace
}  // namespace gep
