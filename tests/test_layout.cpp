#include <gtest/gtest.h>

#include "layout/zblocked.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(Morton, SpreadBitsExamples) {
  EXPECT_EQ(spread_bits(0), 0u);
  EXPECT_EQ(spread_bits(1), 1u);
  EXPECT_EQ(spread_bits(0b11), 0b0101u);
  EXPECT_EQ(spread_bits(0b101), 0b010001u);
}

TEST(Morton, Morton2IsZOrder) {
  // (row, col): row bits odd, col bits even.
  EXPECT_EQ(morton2(0, 0), 0u);
  EXPECT_EQ(morton2(0, 1), 1u);
  EXPECT_EQ(morton2(1, 0), 2u);
  EXPECT_EQ(morton2(1, 1), 3u);
  EXPECT_EQ(morton2(2, 0), 8u);
  EXPECT_EQ(morton2(0, 2), 4u);
}

TEST(Morton, BijectiveOnGrid) {
  std::vector<bool> seen(64 * 64, false);
  for (index_t r = 0; r < 64; ++r) {
    for (index_t c = 0; c < 64; ++c) {
      auto z = morton2(r, c);
      ASSERT_LT(z, 64u * 64u);
      EXPECT_FALSE(seen[z]);
      seen[z] = true;
    }
  }
}

TEST(ZBlocked, LoadStoreRoundTrip) {
  for (index_t n : {8, 16, 64}) {
    for (index_t bs : {2, 4, 8}) {
      SplitMix64 g(static_cast<std::uint64_t>(n * 100 + bs));
      Matrix<double> m(n, n);
      for (index_t i = 0; i < n; ++i)
        for (index_t j = 0; j < n; ++j) m(i, j) = g.next_double();
      ZBlocked<double> z(n, bs);
      z.load(m);
      Matrix<double> back(n, n, 0.0);
      z.store(back);
      EXPECT_TRUE(approx_equal(m, back)) << "n=" << n << " bs=" << bs;
    }
  }
}

TEST(ZBlocked, ElementAccessMatchesRowMajor) {
  const index_t n = 16, bs = 4;
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = static_cast<double>(i * n + j);
  ZBlocked<double> z(n, bs);
  z.load(m);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) EXPECT_EQ(z.at(i, j), m(i, j));
}

TEST(ZBlocked, TilesAreContiguousRowMajor) {
  const index_t n = 8, bs = 4;
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = static_cast<double>(i * n + j);
  ZBlocked<double> z(n, bs);
  z.load(m);
  const double* t = z.tile(1, 0);  // rows 4..7, cols 0..3
  for (index_t r = 0; r < bs; ++r)
    for (index_t c = 0; c < bs; ++c)
      EXPECT_EQ(t[r * bs + c], m(4 + r, c));
}

TEST(ZBlocked, SiblingTilesAdjacentInMemory) {
  const index_t n = 16, bs = 4;
  ZBlocked<double> z(n, bs);
  // Z-order: (0,0),(0,1),(1,0),(1,1) tiles are consecutive.
  EXPECT_EQ(z.tile(0, 1) - z.tile(0, 0), bs * bs);
  EXPECT_EQ(z.tile(1, 0) - z.tile(0, 1), bs * bs);
  EXPECT_EQ(z.tile(1, 1) - z.tile(1, 0), bs * bs);
}

TEST(Stores, RowMajorStoreTileAddressing) {
  const index_t n = 8, bs = 4;
  Matrix<double> m(n, n, 0.0);
  m(4, 6) = 42;
  RowMajorStore<double> st{m.data(), n, bs};
  EXPECT_EQ(st.tile_stride(), n);
  EXPECT_EQ(st.tile(1, 1)[0 * n + 2], 42);
}

TEST(Stores, ZStoreDelegates) {
  const index_t n = 8, bs = 4;
  Matrix<double> m(n, n, 1.0);
  ZBlocked<double> z(n, bs);
  z.load(m);
  ZStore<double> st{&z};
  EXPECT_EQ(st.tile_stride(), bs);
  EXPECT_EQ(st.tile(1, 1)[0], 1.0);
}

}  // namespace
}  // namespace gep
