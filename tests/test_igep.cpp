// I-GEP (Fig. 2) correctness: must match the iterative G on the paper's
// supported instances (FW, GE, LU, MM-as-GEP) for every size and base
// size — and must REPRODUCE the paper's Section 2.2.1 counterexample on
// the unsupported SumF instance.
#include <gtest/gtest.h>

#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

Matrix<double> random_matrix(index_t n, std::uint64_t seed, double lo = 0.5,
                             double hi = 2.0) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(lo, hi);
  return m;
}

// Diagonally dominant: keeps pivots well away from zero for GE/LU.
Matrix<double> random_dd_matrix(index_t n, std::uint64_t seed) {
  Matrix<double> m = random_matrix(n, seed, -1.0, 1.0);
  for (index_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n) + 1.0;
  return m;
}

Matrix<double> random_dist_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 100.0);
    m(i, i) = 0.0;
  }
  return m;
}

struct Instance {
  index_t n;
  index_t base;
};

class IGepMatchesG : public ::testing::TestWithParam<Instance> {};

TEST_P(IGepMatchesG, FloydWarshall) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dist_matrix(n, 11 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, MinPlusF{}, FullSet{n});
  run_igep(got, MinPlusF{}, FullSet{n}, {base});
  EXPECT_TRUE(approx_equal(ref, got, 1e-12)) << "n=" << n << " base=" << base;
}

TEST_P(IGepMatchesG, GaussianElimination) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dd_matrix(n, 23 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, GaussF{}, GaussianSet{n});
  run_igep(got, GaussF{}, GaussianSet{n}, {base});
  EXPECT_LT(max_abs_diff(ref, got), 1e-9) << "n=" << n << " base=" << base;
}

TEST_P(IGepMatchesG, LUDecomposition) {
  auto [n, base] = GetParam();
  Matrix<double> ref = random_dd_matrix(n, 37 + static_cast<unsigned>(n));
  Matrix<double> got = ref;
  run_gep(ref, LUIndexedF{}, LUSet{n});
  run_igep(got, LUIndexedF{}, LUSet{n}, {base});
  EXPECT_LT(max_abs_diff(ref, got), 1e-9) << "n=" << n << " base=" << base;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, IGepMatchesG,
    ::testing::Values(Instance{1, 1}, Instance{2, 1}, Instance{4, 1},
                      Instance{8, 1}, Instance{8, 2}, Instance{16, 1},
                      Instance{16, 4}, Instance{32, 8}, Instance{32, 32},
                      Instance{64, 16}, Instance{128, 32}));

// Paper Section 2.2.1: 2x2, f = sum of operands, Σ = full cube, initial
// c = [[0,0],[1? ...]] — paper: c[1,1]=c[1,2]=c[2,1]=0, c[2,2]=1 (1-based)
// => 0-based c(1,1)=1, rest 0. G yields c[2,1](1-based)=c(1,0)=2, F
// yields 8.
TEST(IGepCounterexample, SumFDivergesExactlyAsPaperSays) {
  Matrix<double> g0(2, 2, 0.0);
  g0(1, 1) = 1.0;
  Matrix<double> f0 = g0;
  run_gep(g0, SumF{}, FullSet{2});
  run_igep(f0, SumF{}, FullSet{2}, {1});
  EXPECT_DOUBLE_EQ(g0(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(f0(1, 0), 8.0);
  EXPECT_FALSE(approx_equal(g0, f0, 1e-12));
}

// I-GEP base-size invariance: for supported instances every base size
// computes the same result (the iterative box kernel is a legal
// refinement of the recursion).
TEST(IGepBaseSize, InvariantAcrossBaseSizes) {
  const index_t n = 32;
  Matrix<double> init = random_dist_matrix(n, 5);
  Matrix<double> ref = init;
  run_igep(ref, MinPlusF{}, FullSet{n}, {1});
  for (index_t base : {2, 4, 8, 16, 32}) {
    Matrix<double> got = init;
    run_igep(got, MinPlusF{}, FullSet{n}, {base});
    EXPECT_TRUE(approx_equal(ref, got, 1e-12)) << "base=" << base;
  }
}

// Pruning: Σ empty over most of the cube must not change results and
// must leave unrelated cells untouched.
TEST(IGepPruning, SparsePredicateSetOnlyTouchesItsCells) {
  const index_t n = 16;
  // Σ touches only cell (3, 5): a degenerate single-cell-column GEP.
  auto sigma = make_predicate_set(n, [](index_t i, index_t j, index_t k) {
    return i == 3 && j == 5 && k == 2;
  });
  Matrix<double> init = random_matrix(n, 99);
  Matrix<double> ref = init;
  Matrix<double> got = init;
  run_gep(ref, MinPlusF{}, sigma);
  run_igep(got, MinPlusF{}, sigma, {1});
  EXPECT_TRUE(approx_equal(ref, got, 0.0));
  // Exactly one cell may have changed.
  int changed = 0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) changed += (got(i, j) != init(i, j));
  EXPECT_LE(changed, 1);
}

// A conservative (predicate) Σ must give identical results to the exact
// closed-form Σ: pruning is an optimization, never a semantic change.
TEST(IGepPruning, ConservativeBoxesMatchExactBoxes) {
  const index_t n = 16;
  Matrix<double> init = random_dd_matrix(n, 61);
  auto pred = make_predicate_set(n, [](index_t i, index_t j, index_t k) {
    return k < i && k < j;  // GaussianSet, without the fast box test
  });
  Matrix<double> a = init, b = init;
  run_igep(a, GaussF{}, GaussianSet{n}, {4});
  run_igep(b, GaussF{}, pred, {4});
  EXPECT_TRUE(approx_equal(a, b, 0.0));
}

}  // namespace
}  // namespace gep
