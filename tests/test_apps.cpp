// End-to-end application tests: every engine on every problem agrees
// with independent references (Dijkstra for APSP, L*U reconstruction for
// LU, naive products for MM), including non-power-of-two sizes and
// multithreaded runs.
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <string>

#include "apps/apps.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using apps::Engine;
using apps::kInfDist;

Matrix<double> random_graph(index_t n, std::uint64_t seed, double density) {
  SplitMix64 g(seed);
  Matrix<double> d(n, n, kInfDist);
  for (index_t i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (index_t j = 0; j < n; ++j) {
      if (i != j && g.chance(density)) d(i, j) = g.uniform(1.0, 10.0);
    }
  }
  return d;
}

// Dijkstra from every source: independent APSP reference.
Matrix<double> dijkstra_apsp(const Matrix<double>& w) {
  const index_t n = w.rows();
  Matrix<double> dist(n, n, kInfDist);
  for (index_t s = 0; s < n; ++s) {
    std::priority_queue<std::pair<double, index_t>,
                        std::vector<std::pair<double, index_t>>,
                        std::greater<>>
        pq;
    dist(s, s) = 0;
    pq.push({0.0, s});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist(s, u)) continue;
      for (index_t v = 0; v < n; ++v) {
        if (w(u, v) >= kInfDist) continue;
        double nd = d + w(u, v);
        if (nd < dist(s, v)) {
          dist(s, v) = nd;
          pq.push({nd, v});
        }
      }
    }
  }
  return dist;
}

const Engine kFwEngines[] = {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                             Engine::CGep, Engine::CGepCompact,
                             Engine::Blocked};

class FwAllEngines : public ::testing::TestWithParam<index_t> {};

TEST_P(FwAllEngines, MatchesDijkstra) {
  const index_t n = GetParam();
  Matrix<double> w = random_graph(n, 100 + static_cast<unsigned>(n), 0.25);
  Matrix<double> ref = dijkstra_apsp(w);
  for (Engine e : kFwEngines) {
    Matrix<double> d = w;
    apps::floyd_warshall(d, e, {16, 1});
    // FW leaves kInfDist-ish values where unreachable; compare reachable
    // cells exactly and unreachable cells as >= kInfDist/2.
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        if (ref(i, j) < kInfDist / 2) {
          EXPECT_NEAR(d(i, j), ref(i, j), 1e-9)
              << apps::engine_name(e) << " n=" << n << " @" << i << "," << j;
        } else {
          EXPECT_GE(d(i, j), kInfDist / 2) << apps::engine_name(e);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FwAllEngines,
                         ::testing::Values(1, 2, 5, 16, 23, 32, 50, 64));

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

class LuAllEngines : public ::testing::TestWithParam<index_t> {};

TEST_P(LuAllEngines, ReconstructsA) {
  const index_t n = GetParam();
  Matrix<double> a = random_dd(n, 200 + static_cast<unsigned>(n));
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                   Engine::CGep, Engine::CGepCompact, Engine::Blocked}) {
    Matrix<double> lu = a;
    apps::lu_decompose(lu, e, {16, 1});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        double sum = 0;
        for (index_t k = 0; k <= std::min(i, j); ++k) {
          sum += ((k == i) ? 1.0 : lu(i, k)) * lu(k, j);
        }
        ASSERT_NEAR(sum, a(i, j), 1e-8)
            << apps::engine_name(e) << " n=" << n << " @" << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuAllEngines,
                         ::testing::Values(1, 3, 8, 20, 32, 47, 64));

TEST(GaussianEngines, UpperTrianglesAgree) {
  const index_t n = 48;  // deliberately not a power of two
  Matrix<double> a = random_dd(n, 7);
  Matrix<double> ref = a;
  apps::gaussian_eliminate(ref, Engine::Iterative);
  for (Engine e : {Engine::IGep, Engine::IGepZ, Engine::CGep,
                   Engine::CGepCompact, Engine::Blocked}) {
    Matrix<double> g = a;
    apps::gaussian_eliminate(g, e, {8, 1});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i; j < n; ++j) {
        ASSERT_NEAR(g(i, j), ref(i, j), 1e-8)
            << apps::engine_name(e) << " @" << i << "," << j;
      }
    }
  }
}

class MmAllEngines : public ::testing::TestWithParam<index_t> {};

TEST_P(MmAllEngines, MatchesNaive) {
  const index_t n = GetParam();
  SplitMix64 g(300 + static_cast<unsigned>(n));
  Matrix<double> a(n, n), b(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = g.uniform(-1, 1);
      b(i, j) = g.uniform(-1, 1);
    }
  Matrix<double> ref(n, n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < n; ++k) {
      const double aik = a(i, k);
      for (index_t j = 0; j < n; ++j) ref(i, j) += aik * b(k, j);
    }
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                   Engine::Blocked}) {
    Matrix<double> c(n, n, 0.0);
    apps::multiply_add(c, a, b, e, {16, 1});
    EXPECT_LT(max_abs_diff(ref, c), 1e-10)
        << apps::engine_name(e) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MmAllEngines,
                         ::testing::Values(1, 2, 9, 16, 31, 64, 65));

TEST(MultiThreadedApps, MatchSingleThreaded) {
  const index_t n = 64;
  Matrix<double> w = random_graph(n, 9, 0.3);
  Matrix<double> seq = w, par = w;
  apps::floyd_warshall(seq, Engine::IGep, {8, 1});
  apps::floyd_warshall(par, Engine::IGep, {8, 4});
  EXPECT_TRUE(approx_equal(seq, par, 0.0));

  Matrix<double> a = random_dd(n, 10);
  Matrix<double> lseq = a, lpar = a;
  apps::lu_decompose(lseq, Engine::IGep, {8, 1});
  apps::lu_decompose(lpar, Engine::IGep, {8, 4});
  EXPECT_TRUE(approx_equal(lseq, lpar, 0.0));

  Matrix<double> b = random_dd(n, 11);
  Matrix<double> c1(n, n, 0.0), c2(n, n, 0.0);
  apps::multiply_add(c1, a, b, Engine::IGep, {8, 1});
  apps::multiply_add(c2, a, b, Engine::IGep, {8, 4});
  EXPECT_TRUE(approx_equal(c1, c2, 0.0));
}

TEST(AppGuards, RejectInvalidInputs) {
  Matrix<double> rect(4, 6, 0.0);
  EXPECT_THROW(apps::floyd_warshall(rect, Engine::IGep), std::invalid_argument);
  EXPECT_THROW(apps::lu_decompose(rect, Engine::IGep), std::invalid_argument);
  Matrix<double> c(4, 4, 0.0), a(4, 4, 0.0), b(6, 6, 0.0);
  EXPECT_THROW(apps::multiply_add(c, a, b, Engine::IGep),
               std::invalid_argument);
  EXPECT_THROW(apps::multiply_add(c, a, a, Engine::CGep),
               std::invalid_argument);
}

TEST(EngineNames, AllDistinct) {
  std::set<std::string> names;
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                   Engine::CGep, Engine::CGepCompact, Engine::Blocked}) {
    names.insert(apps::engine_name(e));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace gep
