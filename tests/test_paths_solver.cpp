// Tests for path reconstruction, bottleneck paths, the linear solver and
// the I-GEP legality checker.
#include <gtest/gtest.h>

#include <queue>

#include "apps/apps.hpp"
#include "apps/linear_solver.hpp"
#include "gep/legality.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using apps::Engine;
using apps::kInfDist;

Matrix<double> random_graph(index_t n, std::uint64_t seed, double density) {
  SplitMix64 g(seed);
  Matrix<double> d(n, n, kInfDist);
  for (index_t i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (index_t j = 0; j < n; ++j) {
      if (i != j && g.chance(density)) d(i, j) = g.uniform(1.0, 10.0);
    }
  }
  return d;
}

// --- Floyd-Warshall with paths ---------------------------------------------

class FwPaths : public ::testing::TestWithParam<index_t> {};

TEST_P(FwPaths, PathsAreValidAndOptimal) {
  const index_t n = GetParam();
  Matrix<double> w = random_graph(n, 400 + static_cast<unsigned>(n), 0.2);
  for (Engine e : {Engine::Iterative, Engine::IGep}) {
    Matrix<double> d = w;
    Matrix<std::int32_t> succ(1, 1);
    apps::floyd_warshall_paths(d, succ, e, {8, 1});

    // Distances agree with the plain engine.
    Matrix<double> ref = w;
    apps::floyd_warshall(ref, Engine::Iterative);
    EXPECT_LT(max_abs_diff(ref, d), 1e-9) << apps::engine_name(e);

    // Every reconstructed path exists edge-by-edge and sums to d(i,j).
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        if (i == j) continue;
        auto path = apps::extract_path(succ, i, j);
        if (d(i, j) >= kInfDist / 2) {
          EXPECT_TRUE(path.empty()) << i << "->" << j;
          continue;
        }
        ASSERT_GE(path.size(), 2u) << i << "->" << j;
        ASSERT_EQ(path.front(), i);
        ASSERT_EQ(path.back(), j);
        double total = 0;
        for (std::size_t s = 0; s + 1 < path.size(); ++s) {
          ASSERT_LT(w(path[s], path[s + 1]), kInfDist / 2)
              << "nonexistent edge on path";
          total += w(path[s], path[s + 1]);
        }
        EXPECT_NEAR(total, d(i, j), 1e-9)
            << apps::engine_name(e) << " " << i << "->" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FwPaths, ::testing::Values(2, 8, 17, 32, 48));

TEST(FwPaths, SelfPathsAndRejects) {
  Matrix<std::int32_t> succ(3, 3, std::int32_t{-1});
  auto p = apps::extract_path(succ, 1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1);
  EXPECT_TRUE(apps::extract_path(succ, 0, 2).empty());
  Matrix<double> rect(2, 3, 0.0);
  Matrix<std::int32_t> s2(1, 1);
  EXPECT_THROW(apps::floyd_warshall_paths(rect, s2, Engine::IGep),
               std::invalid_argument);
}

// --- Bottleneck paths --------------------------------------------------------

// Reference: maximum-capacity path via binary search over edge capacities
// (simple O(n^4) widest-path by repeated DFS would do; use iterative FW
// variant independently coded here).
Matrix<double> bottleneck_ref(const Matrix<double>& cap0) {
  const index_t n = cap0.rows();
  Matrix<double> c = cap0;
  for (index_t i = 0; i < n; ++i)
    c(i, i) = std::numeric_limits<double>::infinity();
  for (index_t k = 0; k < n; ++k)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        c(i, j) = std::max(c(i, j), std::min(c(i, k), c(k, j)));
  return c;
}

class Bottleneck : public ::testing::TestWithParam<index_t> {};

TEST_P(Bottleneck, AllEnginesMatchReference) {
  const index_t n = GetParam();
  SplitMix64 g(500 + static_cast<unsigned>(n));
  Matrix<double> cap(n, n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      if (i != j && g.chance(0.3)) cap(i, j) = g.uniform(1.0, 100.0);
  Matrix<double> ref = bottleneck_ref(cap);
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::IGepZ,
                   Engine::CGep, Engine::CGepCompact}) {
    Matrix<double> c = cap;
    apps::bottleneck_paths(c, e, {8, 1});
    EXPECT_TRUE(approx_equal(ref, c, 0.0))
        << apps::engine_name(e) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bottleneck, ::testing::Values(2, 8, 15, 32));

TEST(Bottleneck, MonotoneInEdgeCapacity) {
  // Raising one edge's capacity never lowers any pairwise bottleneck.
  const index_t n = 16;
  SplitMix64 g(7);
  Matrix<double> cap(n, n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      if (i != j && g.chance(0.3)) cap(i, j) = g.uniform(1.0, 50.0);
  Matrix<double> before = cap;
  apps::bottleneck_paths(before, Engine::IGep, {4, 1});
  cap(2, 3) = 1000.0;
  Matrix<double> after = cap;
  apps::bottleneck_paths(after, Engine::IGep, {4, 1});
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_GE(after(i, j), before(i, j) - 1e-12);
}

// --- Linear solver -----------------------------------------------------------

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

class Solver : public ::testing::TestWithParam<index_t> {};

TEST_P(Solver, SmallResidualAllEngines) {
  const index_t n = GetParam();
  Matrix<double> a = random_dd(n, 600 + static_cast<unsigned>(n));
  SplitMix64 g(3);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& x : b) x = g.uniform(-5, 5);
  for (Engine e : {Engine::Iterative, Engine::IGep, Engine::Blocked}) {
    auto x = apps::solve(a, b, e, {16, 1});
    EXPECT_LT(apps::residual_inf(a, x, b), 1e-9) << apps::engine_name(e);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Solver, ::testing::Values(1, 5, 16, 33, 64));

TEST(Solver, MultiRhsMatchesSingle) {
  const index_t n = 24, r = 3;
  Matrix<double> a = random_dd(n, 9);
  SplitMix64 g(4);
  Matrix<double> b(n, r);
  for (index_t i = 0; i < n; ++i)
    for (index_t c = 0; c < r; ++c) b(i, c) = g.uniform(-1, 1);
  Matrix<double> x = apps::solve(a, b, Engine::IGep, {8, 1});
  for (index_t c = 0; c < r; ++c) {
    std::vector<double> bc(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) bc[static_cast<std::size_t>(i)] = b(i, c);
    auto xc = apps::solve(a, bc, Engine::IGep, {8, 1});
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, c), xc[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Solver, DeterminantKnownValues) {
  Matrix<double> id(5, 5, 0.0);
  for (index_t i = 0; i < 5; ++i) id(i, i) = 1.0;
  EXPECT_NEAR(apps::determinant(id), 1.0, 1e-12);
  Matrix<double> diag(3, 3, 0.0);
  diag(0, 0) = 2;
  diag(1, 1) = -3;
  diag(2, 2) = 4;
  EXPECT_NEAR(apps::determinant(diag), -24.0, 1e-12);
  // 2x2: det = ad - bc.
  Matrix<double> m(2, 2);
  m(0, 0) = 3;
  m(0, 1) = 7;
  m(1, 0) = 1;
  m(1, 1) = 5;
  EXPECT_NEAR(apps::determinant(m), 8.0, 1e-12);
}

TEST(Solver, InverseTimesOriginalIsIdentity) {
  const index_t n = 40;
  Matrix<double> a = random_dd(n, 31);
  Matrix<double> inv = apps::invert(a, Engine::IGep, {8, 1});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double sum = 0;
      for (index_t k = 0; k < n; ++k) sum += a(i, k) * inv(k, j);
      ASSERT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
}

TEST(Solver, RejectsMismatchedDimensions) {
  Matrix<double> a(3, 3, 1.0);
  std::vector<double> b(4, 0.0);
  EXPECT_THROW(apps::solve(a, b), std::invalid_argument);
}

// --- Legality checker --------------------------------------------------------

TEST(Legality, AcceptsKnownLegalInstances) {
  const index_t n = 16;
  auto fw = legality::differential_check(MinPlusF{}, FullSet{n}, n,
                                         {6, 1e-9, 1.0, 50.0, 77});
  EXPECT_TRUE(fw.legal) << "max_diff=" << fw.max_diff;
  // LU on diagonally-shifted inputs: shift via the value range trick is
  // unavailable, so check GaussF with inputs bounded away from zero.
  auto ge = legality::differential_check(GaussF{}, GaussianSet{n}, n,
                                         {6, 1e-6, 1.0, 2.0, 78});
  EXPECT_TRUE(ge.legal) << "max_diff=" << ge.max_diff;
}

TEST(Legality, RejectsSumFCounterexample) {
  const index_t n = 4;
  auto r = legality::differential_check(SumF{}, FullSet{n}, n, {4});
  EXPECT_FALSE(r.legal);
  EXPECT_GE(r.witness_i, 0);
  EXPECT_GT(r.max_diff, 0.0);
}

TEST(Legality, RejectsBandedMinPlus) {
  const index_t n = 16;
  auto r = legality::differential_check(MinPlusF{}, BandedSet{n, 3}, n,
                                        {6, 1e-9, 1.0, 50.0, 79});
  EXPECT_FALSE(r.legal);
}

}  // namespace
}  // namespace gep
